//! A hand-rolled JSON subset — parser and writer.
//!
//! The build environment has an empty registry, so scenario-grid files and
//! structured result artifacts use this ~300-line implementation instead of
//! `serde`. Supported grammar: objects, arrays, strings (with the common
//! escapes and `\uXXXX`), finite numbers, booleans and `null`, plus two
//! conveniences for human-edited grid files: `//`- and `#`-style comments
//! and trailing commas. Object key order is preserved, so written artifacts
//! are stable and diffable.

use crate::{PipelineError, Result};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a document (one value, optionally surrounded by whitespace and
    /// comments).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Parse`] with a 1-based line number on malformed
    /// input.
    pub fn parse(src: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after the document"));
        }
        Ok(value)
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Encode a `u64` exactly: as a number while f64-safe (≤ 2⁵³), as a
    /// decimal string above that. JSON numbers travel as doubles, which
    /// would corrupt the low bits of full-range values like split seeds.
    pub fn from_u64(n: u64) -> Json {
        const F64_EXACT: u64 = 1 << 53;
        if n <= F64_EXACT {
            Json::Num(n as f64)
        } else {
            Json::Str(n.to_string())
        }
    }

    /// Decode a `u64` written by [`Json::from_u64`] (also accepts any
    /// non-negative integral number or decimal string).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object (ordered key/value pairs).
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize onto one line with no extra whitespace — the JSON-lines
    /// form the `repro serve` daemon speaks (one value per line, so
    /// embedded newlines are never emitted).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn line(&self) -> usize {
        1 + self.bytes[..self.pos]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    fn err(&self, msg: impl Into<String>) -> PipelineError {
        PipelineError::Parse {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Skip whitespace and `//` / `#` line comments.
    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
            let comment = match self.peek() {
                Some(b'#') => true,
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'/') => true,
                _ => false,
            };
            if !comment {
                return;
            }
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                byte as char,
                match self.peek() {
                    Some(b) => format!("`{}`", b as char),
                    None => "end of input".to_string(),
                }
            )))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err(format!("non-finite number `{text}`")));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {}
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(fields));
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {}
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"
        // a grid file
        {
          "name": "sweep",        # with a comment
          "nodes": [45, 32, 22, 16],
          "nested": { "ok": true, "none": null, "pi": 3.25 },
        }
        "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("sweep"));
        assert_eq!(v.get("nodes").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            v.get("nested").unwrap().get("pi").unwrap().as_f64(),
            Some(3.25)
        );
        assert_eq!(v.get("nested").unwrap().get("none"), Some(&Json::Null));
    }

    #[test]
    fn round_trips_through_the_writer() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"s": "x \"y\"\nz", "t": false}}"#;
        let v = Json::parse(doc).unwrap();
        let printed = v.to_string_pretty();
        let reparsed = Json::parse(&printed).unwrap();
        assert_eq!(v, reparsed, "pretty output must reparse to the same value");
    }

    #[test]
    fn compact_form_is_one_line_and_reparses() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"s": "x \"y\"\nz", "t": false}, "c": null}"#;
        let v = Json::parse(doc).unwrap();
        let compact = v.to_string_compact();
        assert!(!compact.contains('\n'), "compact output must be one line");
        assert!(!compact.contains(": "), "no decorative whitespace");
        assert_eq!(Json::parse(&compact).unwrap(), v);
    }

    #[test]
    fn preserves_key_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let bad = "{\n  \"a\": 1,\n  \"b\": oops\n}";
        match Json::parse(bad) {
            Err(PipelineError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected a parse error, got {other:?}"),
        }
        assert!(
            Json::parse("{\"a\": 1, \"a\": 2}").is_err(),
            "duplicate key"
        );
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err(), "trailing content");
        assert!(Json::parse("1e999").is_err(), "non-finite number");
    }

    #[test]
    fn u64_encoding_is_exact_across_the_full_range() {
        for n in [
            0,
            7,
            (1u64 << 53) - 1,
            1u64 << 53,
            (1u64 << 53) + 1,
            10_451_216_379_200_822_466,
            u64::MAX,
        ] {
            let encoded = Json::from_u64(n);
            let reparsed = Json::parse(&encoded.to_string_pretty()).unwrap();
            assert_eq!(reparsed.as_u64(), Some(n), "n = {n}");
        }
        // Small values stay plain numbers (human-friendly wire format).
        assert!(matches!(Json::from_u64(42), Json::Num(_)));
        // Values that would round in an f64 travel as strings.
        assert!(matches!(Json::from_u64(u64::MAX), Json::Str(_)));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
        assert_eq!(Json::Str("not a number".into()).as_u64(), None);
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""café""#).unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }
}
