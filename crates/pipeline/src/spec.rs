//! Declarative scenario specifications and scenario grids.
//!
//! A [`ScenarioSpec`] names one complete yield computation: a processing
//! corner × a correlation scenario × a technology node × a cell library ×
//! a yield target × a numerical count back-end (plus the knobs the paper's
//! experiments vary: grid policy, `M_min` treatment, critical-FET density
//! source). Specs serialize to the JSON-lite format of [`crate::json`], so
//! whole grids live in version-controlled files and sweep results come
//! back as structured artifacts.
//!
//! A [`ScenarioGrid`] file has three (all optional, at least one required)
//! top-level sections:
//!
//! ```text
//! {
//!   // fields merged into every scenario
//!   "defaults": { "library": "nangate45", "yield_target": 0.9 },
//!   // cartesian product axes: every combination becomes one scenario
//!   "axes": { "node_nm": [45, 32], "correlation": ["none", "growth+aligned-layout"] },
//!   // and/or explicitly listed scenarios (each merged over the defaults)
//!   "scenarios": [ { "name": "anchor", "node_nm": 45 } ]
//! }
//! ```

use crate::json::Json;
use crate::knob;
use crate::{PipelineError, Result};
use cnfet_core::corner::ProcessCorner;
use cnfet_core::paper;
use cnfet_fault::redundancy::INVERT_TERM_LIMIT;
use cnfet_fault::{PurityMode, RedundancyScheme};
use cnfet_layout::GridPolicy;
use cnfet_sim::adaptive::McPrecision;
use cnt_stats::renewal::CountModel;
use cnt_stats::seed::split_seed;
use cnt_stats::DistSpec;

fn invalid(field: &'static str, msg: impl Into<String>) -> PipelineError {
    PipelineError::InvalidSpec {
        field,
        msg: msg.into(),
    }
}

/// The processing corner of Eq. (2.1): a paper-named corner or an explicit
/// `(pm, pRs, pRm)` triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CornerSpec {
    /// `pm = 33 %, pRs = 30 %` — the paper's main corner.
    Aggressive,
    /// `pm = 33 %, pRs = 0` — perfect removal selectivity.
    IdealRemoval,
    /// `pm = 0, pRs = 0` — perfectly semiconducting growth.
    AllSemiconducting,
    /// An explicit corner.
    Custom {
        /// Metallic CNT fraction.
        pm: f64,
        /// Collateral semiconducting removal probability.
        p_rs: f64,
        /// Metallic removal probability.
        p_rm: f64,
    },
}

impl CornerSpec {
    /// Resolve to a validated [`ProcessCorner`].
    ///
    /// # Errors
    ///
    /// Propagates out-of-range probabilities for custom corners.
    pub fn corner(&self) -> Result<ProcessCorner> {
        let c = match self {
            CornerSpec::Aggressive => ProcessCorner::aggressive(),
            CornerSpec::IdealRemoval => ProcessCorner::ideal_removal(),
            CornerSpec::AllSemiconducting => ProcessCorner::all_semiconducting(),
            CornerSpec::Custom { pm, p_rs, p_rm } => ProcessCorner::new(*pm, *p_rs, *p_rm),
        };
        Ok(c?)
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self> {
        match v {
            Json::Str(s) => match s.as_str() {
                "aggressive" => Ok(CornerSpec::Aggressive),
                "ideal-removal" => Ok(CornerSpec::IdealRemoval),
                "all-semiconducting" => Ok(CornerSpec::AllSemiconducting),
                other => Err(invalid(
                    "corner",
                    format!(
                        "unknown corner `{other}` (expected aggressive, ideal-removal, \
                         all-semiconducting, or an object)"
                    ),
                )),
            },
            Json::Obj(_) => {
                let field = |key: &str| -> Result<Option<f64>> {
                    match v.get(key) {
                        None => Ok(None),
                        Some(j) => j
                            .as_f64()
                            .map(Some)
                            .ok_or_else(|| invalid("corner", format!("`{key}` must be a number"))),
                    }
                };
                Ok(CornerSpec::Custom {
                    pm: field("pm")?.ok_or_else(|| invalid("corner", "missing `pm`"))?,
                    p_rs: field("p_rs")?.ok_or_else(|| invalid("corner", "missing `p_rs`"))?,
                    p_rm: field("p_rm")?.unwrap_or(1.0),
                })
            }
            _ => Err(invalid("corner", "must be a string or an object")),
        }
    }

    fn to_json(self) -> Json {
        match self {
            CornerSpec::Aggressive => Json::Str("aggressive".into()),
            CornerSpec::IdealRemoval => Json::Str("ideal-removal".into()),
            CornerSpec::AllSemiconducting => Json::Str("all-semiconducting".into()),
            CornerSpec::Custom { pm, p_rs, p_rm } => Json::Obj(vec![
                ("pm".into(), Json::Num(pm)),
                ("p_rs".into(), Json::Num(p_rs)),
                ("p_rm".into(), Json::Num(p_rm)),
            ]),
        }
    }

    /// Short display label.
    pub fn label(&self) -> String {
        match self.corner() {
            Ok(c) => c.label(),
            Err(_) => "invalid corner".to_string(),
        }
    }
}

/// The growth/layout correlation scenario (paper Fig 3.1 / Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrelationSpec {
    /// Uncorrelated CNT growth — every device fails independently.
    None,
    /// Directional growth on an unmodified (non-aligned) library: partial
    /// track sharing, credited with the paper's Table 1 growth factor.
    Growth,
    /// Directional growth + aligned-active layout: the full `M_Rmin`
    /// relaxation.
    GrowthAlignedLayout,
}

impl CorrelationSpec {
    /// The canonical scenario names, in benefit order.
    pub const KINDS: [&'static str; 3] = ["none", "growth", "growth+aligned-layout"];

    const NAMES: [(&'static str, CorrelationSpec); 3] = [
        ("none", CorrelationSpec::None),
        ("growth", CorrelationSpec::Growth),
        (
            "growth+aligned-layout",
            CorrelationSpec::GrowthAlignedLayout,
        ),
    ];

    pub(crate) fn from_json(v: &Json) -> Result<Self> {
        let s = v
            .as_str()
            .ok_or_else(|| invalid("correlation", "must be a string"))?;
        Self::NAMES
            .iter()
            .find(|(name, _)| *name == s)
            .map(|(_, value)| *value)
            .ok_or_else(|| {
                invalid(
                    "correlation",
                    format!("unknown scenario `{s}` (none, growth, growth+aligned-layout)"),
                )
            })
    }

    /// The canonical scenario name.
    pub fn name(&self) -> &'static str {
        Self::NAMES
            .iter()
            .find(|(_, value)| value == self)
            .map(|(name, _)| *name)
            .expect("every variant is named")
    }
}

/// Which standard-cell library (and with it, the base technology node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibrarySpec {
    /// The Nangate-45-class library (134 cells, 45 nm).
    Nangate45,
    /// The commercial-65-class library (775 cells, 65 nm).
    Commercial65,
}

impl LibrarySpec {
    /// The canonical library names.
    pub const KINDS: [&'static str; 2] = ["nangate45", "commercial65"];

    /// Generate the library.
    pub fn build(&self) -> cnfet_celllib::CellLibrary {
        match self {
            LibrarySpec::Nangate45 => cnfet_celllib::nangate45::nangate45_like(),
            LibrarySpec::Commercial65 => cnfet_celllib::commercial65::commercial65_like(),
        }
    }

    /// The library's native technology node (nm).
    pub fn node_nm(&self) -> f64 {
        match self {
            LibrarySpec::Nangate45 => 45.0,
            LibrarySpec::Commercial65 => 65.0,
        }
    }

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            LibrarySpec::Nangate45 => "nangate45",
            LibrarySpec::Commercial65 => "commercial65",
        }
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self> {
        match v.as_str() {
            Some("nangate45") => Ok(LibrarySpec::Nangate45),
            Some("commercial65") => Ok(LibrarySpec::Commercial65),
            Some(other) => Err(invalid(
                "library",
                format!("unknown library `{other}` (nangate45, commercial65)"),
            )),
            None => Err(invalid("library", "must be a string")),
        }
    }
}

/// The numerical CNT-count back-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackendSpec {
    /// Exact discretized convolution with the given step (nm).
    Convolution {
        /// Discretization step in nanometres.
        step: f64,
    },
    /// The ~100× faster central-limit approximation.
    GaussianSum,
    /// Adaptive-precision Monte Carlo: the stratified, exponentially
    /// tilted simulation estimator, run in batches until the confidence
    /// interval of every `pF(W)` query is tighter than `rel_ci`. The
    /// independent witness that cross-validates the two analytic
    /// back-ends.
    MonteCarlo {
        /// Target relative confidence-interval half-width (e.g. 0.05).
        rel_ci: f64,
        /// Hard cap on trials per `pF(W)` evaluation.
        max_trials: u64,
        /// Trials per batch (the seeding/commit granularity).
        batch: u32,
        /// Confidence level of the reported intervals (e.g. 0.95).
        ci_level: f64,
    },
}

/// Grid-file defaults for the Monte-Carlo back-end — the single source of
/// truth is [`McPrecision::default`] (±5 % at 95 % confidence, batches of
/// 2000, at most 2 M trials per width).
pub fn mc_backend_defaults() -> BackendSpec {
    let p = McPrecision::default();
    BackendSpec::MonteCarlo {
        rel_ci: p.rel_ci,
        max_trials: p.max_trials,
        batch: p.batch,
        ci_level: p.level,
    }
}

impl BackendSpec {
    /// The canonical back-end kind names.
    pub const KINDS: [&'static str; 3] = ["convolution", "gaussian-sum", "monte-carlo"];

    /// The equivalent `cnt-stats` count model. The Monte-Carlo back-end's
    /// adaptive driver lives above the count model (see
    /// `cnfet_core::stochastic::McFailure`); here it maps to the
    /// fixed-trials [`CountModel::MonteCarlo`] flavor at one batch per
    /// evaluation, which is what auxiliary single-shot queries (e.g. the
    /// row-failure cross-check's count sampling) use.
    pub fn count_model(&self, seed: u64) -> CountModel {
        match self {
            BackendSpec::Convolution { step } => CountModel::Convolution { step: *step },
            BackendSpec::GaussianSum => CountModel::GaussianSum,
            BackendSpec::MonteCarlo { batch, .. } => CountModel::MonteCarlo {
                trials: (*batch).max(2),
                seed,
            },
        }
    }

    /// The adaptive-precision target of a Monte-Carlo back-end.
    pub fn mc_precision(&self) -> Option<McPrecision> {
        match self {
            BackendSpec::MonteCarlo {
                rel_ci,
                max_trials,
                batch,
                ci_level,
            } => Some(McPrecision {
                rel_ci: *rel_ci,
                max_trials: *max_trials,
                batch: *batch,
                level: *ci_level,
            }),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::Convolution { .. } => "convolution",
            BackendSpec::GaussianSum => "gaussian-sum",
            BackendSpec::MonteCarlo { .. } => "monte-carlo",
        }
    }

    /// Parse the monte-carlo parameter object. `allow` names the keys that
    /// are legal in this form (the `kind` form carries a `kind` key, the
    /// nested form does not); anything else — including a non-object
    /// payload — is an error rather than a silent fall-through to the
    /// defaults.
    fn mc_from_fields(v: &Json, allow: &[&str]) -> Result<Self> {
        let fields = v
            .as_object()
            .ok_or_else(|| invalid("backend", "monte-carlo parameters must be an object"))?;
        for (key, _) in fields {
            if !allow.contains(&key.as_str()) {
                return Err(invalid(
                    "backend",
                    format!(
                        "unknown monte-carlo field `{key}` (rel_ci, max_trials, batch, ci_level)"
                    ),
                ));
            }
        }
        let field = |key: &str| -> Result<Option<f64>> {
            match v.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| invalid("backend", format!("`{key}` must be a number"))),
            }
        };
        let d = McPrecision::default();
        Ok(BackendSpec::MonteCarlo {
            rel_ci: field("rel_ci")?.unwrap_or(d.rel_ci),
            max_trials: field("max_trials")?.map_or(d.max_trials, |v| v as u64),
            batch: field("batch")?.map_or(d.batch, |v| v as u32),
            ci_level: field("ci_level")?.unwrap_or(d.level),
        })
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self> {
        match v {
            Json::Str(s) => match s.as_str() {
                "convolution" => Ok(BackendSpec::Convolution { step: 0.05 }),
                "gaussian-sum" => Ok(BackendSpec::GaussianSum),
                "monte-carlo" => Ok(mc_backend_defaults()),
                other => Err(invalid(
                    "backend",
                    format!("unknown backend `{other}` (convolution, gaussian-sum, monte-carlo)"),
                )),
            },
            Json::Obj(fields) => {
                // Nested single-key form: { "monte-carlo": { "rel_ci": … } }.
                if fields.len() == 1 && fields[0].0 == "monte-carlo" {
                    return Self::mc_from_fields(
                        &fields[0].1,
                        &["rel_ci", "max_trials", "batch", "ci_level"],
                    );
                }
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| invalid("backend", "object form needs a `kind` string"))?;
                match kind {
                    "convolution" => Ok(BackendSpec::Convolution {
                        step: v.get("step").and_then(Json::as_f64).unwrap_or(0.05),
                    }),
                    "gaussian-sum" => Ok(BackendSpec::GaussianSum),
                    "monte-carlo" => Self::mc_from_fields(
                        v,
                        &["kind", "rel_ci", "max_trials", "batch", "ci_level"],
                    ),
                    other => Err(invalid("backend", format!("unknown backend `{other}`"))),
                }
            }
            _ => Err(invalid("backend", "must be a string or an object")),
        }
    }

    fn to_json(self) -> Json {
        match self {
            BackendSpec::Convolution { step } => Json::Obj(vec![
                ("kind".into(), Json::Str("convolution".into())),
                ("step".into(), Json::Num(step)),
            ]),
            BackendSpec::GaussianSum => Json::Str("gaussian-sum".into()),
            BackendSpec::MonteCarlo {
                rel_ci,
                max_trials,
                batch,
                ci_level,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("monte-carlo".into())),
                ("rel_ci".into(), Json::Num(rel_ci)),
                ("max_trials".into(), Json::Num(max_trials as f64)),
                ("batch".into(), Json::Num(f64::from(batch))),
                ("ci_level".into(), Json::Num(ci_level)),
            ]),
        }
    }
}

/// How `M_min` (the minimum-sized-device count) is determined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MminSpec {
    /// A fraction of the chip's transistors (the paper's fixed 33 %, or a
    /// distribution over fractions for stochastic scenarios).
    Fraction(DistSpec),
    /// The self-consistent Eq. (2.5) fixed point over the design's width
    /// distribution (the scaling-study treatment).
    SelfConsistent,
}

impl MminSpec {
    /// The paper's fixed-fraction form (scalar back-compat constructor).
    pub fn fraction(f: f64) -> Self {
        MminSpec::Fraction(DistSpec::Fixed(f))
    }
}

/// Where the critical-FET row density `ρ` comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RhoSpec {
    /// The paper's 1.8 FET/µm (Sec 3.3).
    Paper,
    /// Measured from the placed OpenRISC-class design on the chosen
    /// library.
    Measured,
}

/// The s-CNT purity knob: the semiconducting fraction of the grown CNTs
/// and how the metallic remainder manifests.
///
/// Wire forms, mirroring the other parameterized specs:
///
/// * a bare number or distribution object — purity in `Short` mode (the
///   scalar back-compat form; metallic CNTs short their transistor);
/// * `{"mode": "removal", "dist": 0.9999}` — an explicit mode plus an
///   optional purity distribution (default `Fixed(1)`). In `removal` mode
///   metallic CNTs are etched away, thinning the CNT count and feeding the
///   paper's existing open-failure path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PuritySpec {
    /// Semiconducting fraction in `(0, 1]` — `Fixed(1)` is the paper's
    /// implicit perfect-purity assumption; a distribution models
    /// lot-to-lot purity spread.
    pub dist: DistSpec,
    /// How metallic CNTs manifest.
    pub mode: PurityMode,
}

impl PuritySpec {
    /// The perfect-purity no-op default (`Fixed(1)`, `Short` mode).
    pub fn perfect() -> Self {
        Self {
            dist: DistSpec::Fixed(1.0),
            mode: PurityMode::Short,
        }
    }

    /// The central purity value: the fixed value, or the distribution
    /// mean for stochastic specs (validated specs never fail here; an
    /// invalid distribution reports 1.0, i.e. inactive).
    pub fn central(&self) -> f64 {
        self.dist
            .as_fixed()
            .or_else(|| self.dist.mean().ok())
            .unwrap_or(1.0)
    }

    /// True if this knob changes any result: purity below one (in either
    /// mode) introduces metallic-CNT defects.
    pub fn is_active(&self) -> bool {
        self.dist.as_fixed() != Some(1.0)
    }

    /// Parse from the wire forms: a bare dist (number or distribution
    /// object, short mode) or a `{"mode": …, "dist": …}` object.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownKey`] / [`PipelineError::InvalidSpec`]
    /// for unknown modes, parameters, or malformed distributions.
    pub fn from_json(v: &Json) -> Result<Self> {
        match v {
            Json::Obj(fields) if v.get("mode").is_some() => {
                const ALLOW: [&str; 2] = ["mode", "dist"];
                for (key, _) in fields {
                    if !ALLOW.contains(&key.as_str()) {
                        return Err(crate::builder::unknown_key("purity", key, &ALLOW));
                    }
                }
                let mode = v
                    .get("mode")
                    .and_then(Json::as_str)
                    .ok_or_else(|| invalid("purity", "`mode` must be a string (short, removal)"))?;
                let mode = PurityMode::parse(mode).ok_or_else(|| {
                    invalid(
                        "purity",
                        format!("unknown purity mode `{mode}` (short, removal)"),
                    )
                })?;
                let dist = match v.get("dist") {
                    None => DistSpec::Fixed(1.0),
                    Some(d) => knob::dist_from_json("purity", d)?,
                };
                Ok(Self { dist, mode })
            }
            _ => Ok(Self {
                dist: knob::dist_from_json("purity", v)?,
                mode: PurityMode::Short,
            }),
        }
    }

    /// Serialize to the wire normal form: short mode emits the bare dist
    /// (scalar back-compat), removal mode the tagged mode object.
    pub fn to_json(&self) -> Json {
        match self.mode {
            PurityMode::Short => knob::dist_to_json(&self.dist),
            PurityMode::Removal => Json::Obj(vec![
                ("mode".into(), Json::Str(self.mode.name().into())),
                ("dist".into(), knob::dist_to_json(&self.dist)),
            ]),
        }
    }

    /// Domain validation: a valid distribution with central value in
    /// `(0, 1]` (fixed values are checked exactly).
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] naming the `purity` field.
    pub fn validate(&self) -> Result<()> {
        self.dist
            .validate()
            .map_err(|e| invalid("purity", e.to_string()))?;
        let central = self.central();
        if !(central > 0.0 && central <= 1.0) {
            return Err(invalid("purity", "must be in (0, 1]"));
        }
        Ok(())
    }
}

/// Parse a [`RedundancyScheme`] from its wire forms: a bare kind string
/// (`"none"`, `"tmr"`), a tagged object
/// (`{"kind": "spare-units", "spares": 4, "unit_size": 65536}`), or the
/// nested single-key shorthand (`{"spare-units": {"spares": 4, …}}`).
/// Unknown kinds and parameters fail with a nearest-name suggestion.
///
/// # Errors
///
/// [`PipelineError::UnknownKey`] / [`PipelineError::InvalidSpec`] for
/// unknown kinds/fields or mistyped parameters. Parameter *domains* are
/// checked by [`ScenarioSpec::validate`], not here.
pub fn redundancy_from_json(v: &Json) -> Result<RedundancyScheme> {
    let count = |v: &Json, kind: &'static str, key: &'static str| -> Result<Option<u64>> {
        match v.get(key) {
            None => Ok(None),
            Some(j) => j
                .as_f64()
                .filter(|n| n.fract() == 0.0 && *n >= 0.0 && *n <= 1e15)
                .map(|n| Some(n as u64))
                .ok_or_else(|| {
                    invalid(
                        "redundancy",
                        format!("{kind} `{key}` must be a non-negative integer"),
                    )
                }),
        }
    };
    let require = |field: Option<u64>, kind: &'static str, key: &'static str| {
        field.ok_or_else(|| invalid("redundancy", format!("{kind} needs `{key}`")))
    };
    let from_fields = |kind: &str, v: &Json, allow: &[&'static str]| -> Result<RedundancyScheme> {
        let fields = v.as_object().ok_or_else(|| {
            invalid(
                "redundancy",
                format!("`{kind}` parameters must be an object"),
            )
        })?;
        for (key, _) in fields {
            if !allow.contains(&key.as_str()) {
                return Err(crate::builder::unknown_key("redundancy", key, allow));
            }
        }
        match kind {
            "none" => Ok(RedundancyScheme::None),
            "tmr" => Ok(RedundancyScheme::Tmr),
            "spare-units" => Ok(RedundancyScheme::SpareUnits {
                spares: require(count(v, "spare-units", "spares")?, "spare-units", "spares")?,
                unit_size: require(
                    count(v, "spare-units", "unit_size")?,
                    "spare-units",
                    "unit_size",
                )?,
            }),
            "repairable-tile" => Ok(RedundancyScheme::RepairableTile {
                tiles: require(
                    count(v, "repairable-tile", "tiles")?,
                    "repairable-tile",
                    "tiles",
                )?,
                spare_tiles: require(
                    count(v, "repairable-tile", "spare_tiles")?,
                    "repairable-tile",
                    "spare_tiles",
                )?,
                test_coverage: match v.get("test_coverage") {
                    None => 1.0,
                    Some(j) => j
                        .as_f64()
                        .ok_or_else(|| invalid("redundancy", "`test_coverage` must be a number"))?,
                },
            }),
            other => Err(crate::builder::unknown_key(
                "redundancy",
                other,
                &RedundancyScheme::KINDS,
            )),
        }
    };
    match v {
        Json::Str(s) => match s.as_str() {
            "none" => Ok(RedundancyScheme::None),
            "tmr" => Ok(RedundancyScheme::Tmr),
            "spare-units" | "repairable-tile" => Err(invalid(
                "redundancy",
                format!("`{s}` needs parameters (use the object form)"),
            )),
            other => Err(crate::builder::unknown_key(
                "redundancy",
                other,
                &RedundancyScheme::KINDS,
            )),
        },
        Json::Obj(fields) => {
            // Nested single-key form: { "spare-units": { "spares": … } }.
            if fields.len() == 1 && RedundancyScheme::KINDS.contains(&fields[0].0.as_str()) {
                let params = match fields[0].0.as_str() {
                    "spare-units" => &["spares", "unit_size"][..],
                    "repairable-tile" => &["tiles", "spare_tiles", "test_coverage"][..],
                    _ => &[][..],
                };
                return from_fields(&fields[0].0, &fields[0].1, params);
            }
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| invalid("redundancy", "object form needs a `kind` string"))?;
            let params = match kind {
                "none" | "tmr" => &["kind"][..],
                "spare-units" => &["kind", "spares", "unit_size"][..],
                "repairable-tile" => &["kind", "tiles", "spare_tiles", "test_coverage"][..],
                other => {
                    return Err(crate::builder::unknown_key(
                        "redundancy",
                        other,
                        &RedundancyScheme::KINDS,
                    ))
                }
            };
            from_fields(kind, v, params)
        }
        _ => Err(invalid("redundancy", "must be a string or an object")),
    }
}

/// Serialize a [`RedundancyScheme`] to its normal wire form: a bare kind
/// string for the parameterless schemes, a tagged `kind` object otherwise.
/// Round-trips exactly through [`redundancy_from_json`].
pub fn redundancy_to_json(s: &RedundancyScheme) -> Json {
    match *s {
        RedundancyScheme::None | RedundancyScheme::Tmr => Json::Str(s.name().into()),
        RedundancyScheme::SpareUnits { spares, unit_size } => Json::Obj(vec![
            ("kind".into(), Json::Str(s.name().into())),
            ("spares".into(), Json::Num(spares as f64)),
            ("unit_size".into(), Json::Num(unit_size as f64)),
        ]),
        RedundancyScheme::RepairableTile {
            tiles,
            spare_tiles,
            test_coverage,
        } => Json::Obj(vec![
            ("kind".into(), Json::Str(s.name().into())),
            ("tiles".into(), Json::Num(tiles as f64)),
            ("spare_tiles".into(), Json::Num(spare_tiles as f64)),
            ("test_coverage".into(), Json::Num(test_coverage)),
        ]),
    }
}

/// One declarative yield scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (also names the result artifact).
    pub name: String,
    /// Processing corner.
    pub corner: CornerSpec,
    /// Growth/layout correlation scenario.
    pub correlation: CorrelationSpec,
    /// Cell library (fixes the base node and the design mapping).
    pub library: LibrarySpec,
    /// Technology node to scale the design to (nm).
    pub node_nm: f64,
    /// Chip yield target in `(0, 1)`.
    pub yield_target: f64,
    /// Numerical count back-end.
    pub backend: BackendSpec,
    /// Chip transistor count `M`.
    pub m_transistors: f64,
    /// `M_min` treatment.
    pub m_min: MminSpec,
    /// Critical-FET density source.
    pub rho: RhoSpec,
    /// Multiplier on the resolved critical-FET density `ρ` — `Fixed(1)`
    /// uses the source density as-is; a distribution models die-to-die
    /// growth-density variation.
    pub density: DistSpec,
    /// CNT correlation length `L_CNT` (µm) — how far devices along the
    /// growth direction share the same CNTs. Sets the row size
    /// `M_Rmin = L_CNT · ρ` and with it the correlated-scenario
    /// relaxation; the paper's directional growth reaches 200 µm. A bare
    /// number is the fixed form; a distribution models per-die variation.
    pub l_cnt_um: DistSpec,
    /// s-CNT purity: the semiconducting fraction of the grown CNTs and
    /// whether metallic ones short their transistor or are removed
    /// (count-thinning). `Fixed(1)` — the default — reproduces the paper's
    /// implicit perfect-purity assumption exactly.
    pub purity: PuritySpec,
    /// Architectural redundancy scheme applied to the per-cell failure
    /// probability before the chip-yield inversion. `None` — the default —
    /// is the paper's raw-yield treatment.
    pub redundancy: RedundancyScheme,
    /// Aligned-active grid policy (Sec 3.3: one or two regions).
    pub grid: GridPolicy,
    /// Use the reduced OpenRISC-class design for the mapped statistics.
    pub fast_design: bool,
    /// Conditional-MC trials for the non-aligned row estimate (0 = analytic
    /// only; only meaningful for correlated scenarios).
    pub mc_trials: u32,
}

impl ScenarioSpec {
    /// The paper's baseline configuration: aggressive corner, Nangate-45
    /// library at its native node, 90 % yield on a 1e8-transistor chip,
    /// exact convolution back-end, fixed 33 % `M_min`, measured density,
    /// single-grid aligned-active, no correlation.
    pub fn baseline(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            corner: CornerSpec::Aggressive,
            correlation: CorrelationSpec::None,
            library: LibrarySpec::Nangate45,
            node_nm: 45.0,
            yield_target: paper::YIELD_TARGET,
            backend: BackendSpec::Convolution { step: 0.05 },
            m_transistors: paper::M_TRANSISTORS,
            m_min: MminSpec::fraction(paper::MMIN_FRACTION),
            rho: RhoSpec::Measured,
            density: DistSpec::Fixed(1.0),
            l_cnt_um: DistSpec::Fixed(paper::L_CNT_UM),
            purity: PuritySpec::perfect(),
            redundancy: RedundancyScheme::None,
            grid: GridPolicy::Single,
            fast_design: false,
            mc_trials: 0,
        }
    }

    /// Check scalar fields are in-domain.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        self.corner.corner()?;
        if !(self.node_nm.is_finite() && self.node_nm > 0.0) {
            return Err(invalid("node_nm", "must be finite and > 0"));
        }
        if !(self.yield_target > 0.0 && self.yield_target < 1.0) {
            return Err(invalid("yield_target", "must be in (0, 1)"));
        }
        if !(self.m_transistors.is_finite() && self.m_transistors >= 1.0) {
            return Err(invalid("m_transistors", "must be finite and >= 1"));
        }
        if let MminSpec::Fraction(d) = self.m_min {
            d.validate().map_err(|e| invalid("m_min", e.to_string()))?;
            if let Some(f) = d.as_fixed() {
                if !(f > 0.0 && f <= 1.0) {
                    return Err(invalid("m_min", "fraction must be in (0, 1]"));
                }
            }
        }
        self.density
            .validate()
            .map_err(|e| invalid("density", e.to_string()))?;
        if let Some(v) = self.density.as_fixed() {
            if !(v.is_finite() && v > 0.0) {
                return Err(invalid("density", "must be finite and > 0"));
            }
        }
        self.l_cnt_um
            .validate()
            .map_err(|e| invalid("l_cnt_um", e.to_string()))?;
        if let Some(v) = self.l_cnt_um.as_fixed() {
            if !(v.is_finite() && v > 0.0) {
                return Err(invalid("l_cnt_um", "must be finite and > 0"));
            }
        }
        self.purity.validate()?;
        self.redundancy
            .validate()
            .map_err(|e| invalid("redundancy", e.to_string()))?;
        if self.redundancy.exact_terms() > INVERT_TERM_LIMIT {
            return Err(invalid(
                "redundancy",
                format!(
                    "scheme needs {} exact tail terms; the per-cell budget \
                     inversion caps at {INVERT_TERM_LIMIT} (reduce spares)",
                    self.redundancy.exact_terms()
                ),
            ));
        }
        if self.fault_active() && self.m_min == MminSpec::SelfConsistent {
            return Err(invalid(
                "m_min",
                "self-consistent M_min is not supported with purity/redundancy \
                 faults active (use a fraction)",
            ));
        }
        match self.backend {
            BackendSpec::Convolution { step } => {
                if !(step.is_finite() && step > 0.0) {
                    return Err(invalid("backend", "convolution step must be > 0"));
                }
            }
            BackendSpec::MonteCarlo { .. } => {
                let precision = self.backend.mc_precision().expect("monte-carlo variant");
                precision.validate().map_err(|e| {
                    invalid("backend", format!("monte-carlo precision invalid: {e}"))
                })?;
            }
            BackendSpec::GaussianSum => {}
        }
        Ok(())
    }

    /// Apply one named field from a JSON value.
    ///
    /// **Deprecated shim**: this now forwards to
    /// [`crate::builder::ScenarioBuilder::set_json`], the single
    /// validation path shared by grid files, the CLI, and the service
    /// envelopes. New code should use the builder directly.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownKey`] for unknown fields (with a
    /// nearest-key suggestion), [`PipelineError::InvalidSpec`] for wrong
    /// types.
    pub fn apply(&mut self, key: &str, value: &Json) -> Result<()> {
        let updated =
            crate::builder::ScenarioBuilder::from_spec(self.clone()).set_json(key, value)?;
        *self = updated.build_unchecked();
        Ok(())
    }

    /// Build a spec from a JSON object, starting from [`Self::baseline`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownKey`] / [`PipelineError::InvalidSpec`] for
    /// unknown fields, wrong types, or out-of-domain values.
    pub fn from_json(v: &Json) -> Result<Self> {
        let fields = v
            .as_object()
            .ok_or_else(|| invalid("scenario", "must be an object"))?;
        let mut builder = crate::builder::ScenarioBuilder::new("scenario");
        for (key, value) in fields {
            builder = builder.set_json(key, value)?;
        }
        builder.build()
    }

    /// True if any knob carries a non-degenerate distribution — i.e. the
    /// scenario needs a seed-driven [`ScenarioSpec::realize`] step before
    /// (or as part of) evaluation.
    pub fn is_stochastic(&self) -> bool {
        let m_min_stochastic = match self.m_min {
            MminSpec::Fraction(d) => !d.is_fixed(),
            MminSpec::SelfConsistent => false,
        };
        !self.density.is_fixed()
            || !self.l_cnt_um.is_fixed()
            || m_min_stochastic
            || !self.purity.dist.is_fixed()
    }

    /// True if the fault subsystem changes this scenario's result: purity
    /// below one (either mode) or any redundancy scheme. Inactive
    /// scenarios take the fault-free evaluation path byte-for-byte.
    pub fn fault_active(&self) -> bool {
        self.purity.is_active() || self.redundancy != RedundancyScheme::None
    }

    /// Resolve every stochastic knob to a concrete scalar under `seed`,
    /// returning an all-`Fixed` spec.
    ///
    /// An already-deterministic spec returns unchanged (no RNG is
    /// consulted), so scalar scenarios evaluate byte-identically to every
    /// prior release. Each knob draws from its own derived stream —
    /// `split_seed(split_seed(seed, KNOB_SALT), knob_index)` in the fixed
    /// order of [`crate::knob::STOCHASTIC_KNOBS`] — so adding a
    /// distribution to one knob never shifts another's draws. Realized
    /// values are clamped to the knob's physical domain and snapped onto
    /// the relative quantization grid (see [`crate::knob::snap`]), which
    /// keeps the downstream caches effective.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] for invalid distribution parameters.
    pub fn realize(&self, seed: u64) -> Result<ScenarioSpec> {
        let mut spec = self.clone();
        if !self.is_stochastic() {
            return Ok(spec);
        }
        let knob_base = split_seed(seed, knob::KNOB_SALT);
        let draw = |knob: usize, d: &DistSpec| -> Result<f64> {
            let mut rng = cnt_stats::seed::seeded_rng(split_seed(knob_base, knob as u64));
            let v = d
                .sample(&mut rng)
                .map_err(|e| invalid("scenario", e.to_string()))?;
            Ok(knob::snap(knob, v))
        };
        if !spec.density.is_fixed() {
            spec.density = DistSpec::Fixed(draw(0, &self.density)?);
        }
        if !spec.l_cnt_um.is_fixed() {
            spec.l_cnt_um = DistSpec::Fixed(draw(1, &self.l_cnt_um)?);
        }
        if let MminSpec::Fraction(d) = self.m_min {
            if !d.is_fixed() {
                spec.m_min = MminSpec::Fraction(DistSpec::Fixed(draw(2, &d)?));
            }
        }
        if !spec.purity.dist.is_fixed() {
            spec.purity.dist = DistSpec::Fixed(draw(3, &self.purity.dist)?);
        }
        Ok(spec)
    }

    /// Serialize the full (explicit) spec.
    pub fn to_json(&self) -> Json {
        let m_min = match self.m_min {
            MminSpec::Fraction(d) => knob::dist_to_json(&d),
            MminSpec::SelfConsistent => Json::Str("self-consistent".into()),
        };
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("corner".into(), self.corner.to_json()),
            (
                "correlation".into(),
                Json::Str(self.correlation.name().into()),
            ),
            ("library".into(), Json::Str(self.library.name().into())),
            ("node_nm".into(), Json::Num(self.node_nm)),
            ("yield_target".into(), Json::Num(self.yield_target)),
            ("backend".into(), self.backend.to_json()),
            ("m_transistors".into(), Json::Num(self.m_transistors)),
            ("m_min".into(), m_min),
            (
                "rho".into(),
                Json::Str(
                    match self.rho {
                        RhoSpec::Paper => "paper",
                        RhoSpec::Measured => "measured",
                    }
                    .into(),
                ),
            ),
            ("density".into(), knob::dist_to_json(&self.density)),
            ("l_cnt_um".into(), knob::dist_to_json(&self.l_cnt_um)),
            ("purity".into(), self.purity.to_json()),
            ("redundancy".into(), redundancy_to_json(&self.redundancy)),
            (
                "grid".into(),
                Json::Str(
                    match self.grid {
                        GridPolicy::Single => "single",
                        GridPolicy::Dual => "dual",
                    }
                    .into(),
                ),
            ),
            ("fast_design".into(), Json::Bool(self.fast_design)),
            ("mc_trials".into(), Json::Num(f64::from(self.mc_trials))),
        ])
    }
}

/// An ordered list of scenarios, typically loaded from a grid file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// The expanded scenarios, in file/product order.
    pub scenarios: Vec<ScenarioSpec>,
}

impl ScenarioGrid {
    /// Parse a grid document (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Parse`] for malformed JSON, otherwise as
    /// [`ScenarioGrid::from_json`].
    pub fn parse(src: &str) -> Result<Self> {
        Self::from_json(&Json::parse(src)?)
    }

    /// Expand a parsed grid document (the form service envelopes carry).
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownKey`] for unknown sections or scenario
    /// fields (with nearest-key suggestions),
    /// [`PipelineError::InvalidSpec`] for bad fields or an empty grid.
    pub fn from_json(doc: &Json) -> Result<Self> {
        const SECTIONS: [&str; 4] = ["defaults", "axes", "scenarios", "name"];
        for (key, _) in doc
            .as_object()
            .ok_or_else(|| invalid("grid", "document must be an object"))?
        {
            if !SECTIONS.contains(&key.as_str()) {
                return Err(crate::builder::unknown_key("grid", key, &SECTIONS));
            }
        }

        let mut base = crate::builder::ScenarioBuilder::new(
            doc.get("name").and_then(Json::as_str).unwrap_or("scenario"),
        );
        if let Some(defaults) = doc.get("defaults") {
            let fields = defaults
                .as_object()
                .ok_or_else(|| invalid("defaults", "must be an object"))?;
            for (key, value) in fields {
                base = base.set_json(key, value)?;
            }
        }
        // Merging is not yet validation: each finished scenario validates
        // once below, after axes/explicit fields are applied over the
        // defaults.
        let base = base.build_unchecked();

        let mut scenarios = Vec::new();

        if let Some(axes) = doc.get("axes") {
            let axes = axes
                .as_object()
                .ok_or_else(|| invalid("axes", "must be an object"))?;
            for (key, values) in axes {
                if values.as_array().is_none_or(<[Json]>::is_empty) {
                    return Err(invalid(
                        "axes",
                        format!("`{key}` must be a non-empty array"),
                    ));
                }
            }
            // Cartesian product in file order: later axes vary fastest.
            let mut combos: Vec<Vec<(String, Json)>> = vec![Vec::new()];
            for (key, values) in axes {
                let values = values.as_array().expect("checked above");
                combos = combos
                    .into_iter()
                    .flat_map(|combo| {
                        values.iter().map(move |v| {
                            let mut next = combo.clone();
                            next.push((key.clone(), v.clone()));
                            next
                        })
                    })
                    .collect();
            }
            for combo in combos {
                let mut builder = crate::builder::ScenarioBuilder::from_spec(base.clone());
                let mut parts = vec![base.name.clone()];
                for (key, value) in &combo {
                    builder = builder.set_json(key, value)?;
                    parts.push(format!("{key}={}", axis_label(value)));
                }
                scenarios.push(builder.name(parts.join("/")).build()?);
            }
        }

        if let Some(explicit) = doc.get("scenarios") {
            let items = explicit
                .as_array()
                .ok_or_else(|| invalid("scenarios", "must be an array"))?;
            for (i, item) in items.iter().enumerate() {
                let fields = item
                    .as_object()
                    .ok_or_else(|| invalid("scenarios", "each entry must be an object"))?;
                let mut builder = crate::builder::ScenarioBuilder::from_spec(base.clone())
                    .name(format!("{}/{}", base.name, i));
                for (key, value) in fields {
                    builder = builder.set_json(key, value)?;
                }
                scenarios.push(builder.build()?);
            }
        }

        if scenarios.is_empty() {
            return Err(invalid(
                "grid",
                "no scenarios: provide `axes` and/or `scenarios`",
            ));
        }
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|p| p[0] == p[1]) {
            return Err(invalid("grid", "scenario names must be unique"));
        }
        Ok(Self { scenarios })
    }

    /// Serialize as an explicit scenario list (the normal-form artifact).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "scenarios".into(),
            Json::Arr(self.scenarios.iter().map(ScenarioSpec::to_json).collect()),
        )])
    }
}

/// Compact rendering of an axis value for auto-generated scenario names.
pub(crate) fn axis_label(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => format!("{}", *n as i64),
        Json::Num(n) => format!("{n}"),
        Json::Bool(b) => format!("{b}"),
        // A tagged parameter object (e.g. a redundancy scheme) labels as
        // `kind(param=value,…)` so candidate names stay readable.
        Json::Obj(fields)
            if fields
                .iter()
                .any(|(k, v)| k == "kind" && v.as_str().is_some()) =>
        {
            let kind = fields
                .iter()
                .find_map(|(k, v)| (k == "kind").then(|| v.as_str().unwrap_or_default()))
                .unwrap_or_default();
            let params: Vec<String> = fields
                .iter()
                .filter(|(k, _)| k != "kind")
                .map(|(k, v)| format!("{k}={}", axis_label(v)))
                .collect();
            if params.is_empty() {
                kind.to_string()
            } else {
                format!("{kind}({})", params.join(","))
            }
        }
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid_and_round_trips() {
        let spec = ScenarioSpec::baseline("anchor");
        spec.validate().unwrap();
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn grid_axes_expand_as_a_product() {
        let grid = ScenarioGrid::parse(
            r#"{
                "name": "scaling",
                "defaults": { "m_min": "self-consistent", "rho": "paper" },
                "axes": {
                    "node_nm": [45, 32, 22, 16],
                    "correlation": ["none", "growth+aligned-layout"]
                }
            }"#,
        )
        .unwrap();
        assert_eq!(grid.scenarios.len(), 8);
        assert_eq!(
            grid.scenarios[0].name,
            "scaling/node_nm=45/correlation=none"
        );
        assert_eq!(grid.scenarios[0].m_min, MminSpec::SelfConsistent);
        assert_eq!(grid.scenarios[0].rho, RhoSpec::Paper);
        assert_eq!(
            grid.scenarios[7].correlation,
            CorrelationSpec::GrowthAlignedLayout
        );
        assert_eq!(grid.scenarios[7].node_nm, 16.0);
        // Later axes vary fastest.
        assert_eq!(
            grid.scenarios[1].correlation,
            CorrelationSpec::GrowthAlignedLayout
        );
        assert_eq!(grid.scenarios[1].node_nm, 45.0);
    }

    #[test]
    fn explicit_scenarios_merge_over_defaults() {
        let grid = ScenarioGrid::parse(
            r#"{
                "defaults": { "library": "commercial65", "yield_target": 0.95 },
                "scenarios": [
                    { "name": "one-grid" },
                    { "name": "two-grids", "grid": "dual" }
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(grid.scenarios.len(), 2);
        for s in &grid.scenarios {
            assert_eq!(s.library, LibrarySpec::Commercial65);
            assert_eq!(s.node_nm, 65.0, "library choice sets the node");
            assert_eq!(s.yield_target, 0.95);
        }
        assert_eq!(grid.scenarios[0].grid, GridPolicy::Single);
        assert_eq!(grid.scenarios[1].grid, GridPolicy::Dual);
    }

    #[test]
    fn rejects_bad_grids() {
        assert!(ScenarioGrid::parse("{}").is_err(), "empty grid");
        assert!(
            ScenarioGrid::parse(r#"{ "axes": { "node_nm": [] } }"#).is_err(),
            "empty axis"
        );
        assert!(
            ScenarioGrid::parse(r#"{ "scenarios": [ { "nope": 1 } ] }"#).is_err(),
            "unknown field"
        );
        assert!(
            ScenarioGrid::parse(r#"{ "mystery": 1, "scenarios": [ {} ] }"#).is_err(),
            "unknown section"
        );
        assert!(
            ScenarioGrid::parse(r#"{ "scenarios": [ { "name": "a" }, { "name": "a" } ] }"#)
                .is_err(),
            "duplicate names"
        );
        assert!(
            ScenarioGrid::parse(r#"{ "scenarios": [ { "yield_target": 2.0 } ] }"#).is_err(),
            "out-of-domain yield"
        );
    }

    #[test]
    fn unknown_grid_keys_name_the_nearest_valid_key() {
        // A typo'd scenario field: the error must carry the suggestion.
        let err =
            ScenarioGrid::parse(r#"{ "scenarios": [ { "yeild_target": 0.9 } ] }"#).unwrap_err();
        match &err {
            PipelineError::UnknownKey {
                key, suggestion, ..
            } => {
                assert_eq!(key, "yeild_target");
                assert_eq!(suggestion.as_deref(), Some("yield_target"));
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        assert!(err.to_string().contains("did you mean `yield_target`"));
        // A typo'd top-level section gets the same treatment.
        let err = ScenarioGrid::parse(r#"{ "defalts": {}, "scenarios": [ {} ] }"#).unwrap_err();
        assert!(
            err.to_string().contains("did you mean `defaults`"),
            "message: {err}"
        );
        // Typo'd axis names too (axes apply fields to scenarios).
        let err = ScenarioGrid::parse(r#"{ "axes": { "node_mn": [45, 32] } }"#).unwrap_err();
        assert!(
            err.to_string().contains("did you mean `node_nm`"),
            "message: {err}"
        );
    }

    #[test]
    fn monte_carlo_backend_forms_and_round_trip() {
        // Bare name → defaults.
        let bare = BackendSpec::from_json(&Json::Str("monte-carlo".into())).unwrap();
        assert_eq!(bare, mc_backend_defaults());
        assert_eq!(bare.name(), "monte-carlo");
        // `kind` object form with overrides.
        let kind = BackendSpec::from_json(
            &Json::parse(r#"{ "kind": "monte-carlo", "rel_ci": 0.02, "batch": 500 }"#).unwrap(),
        )
        .unwrap();
        assert_eq!(
            kind,
            BackendSpec::MonteCarlo {
                rel_ci: 0.02,
                max_trials: 2_000_000,
                batch: 500,
                ci_level: 0.95
            }
        );
        // Nested single-key form (the grid-schema shorthand).
        let nested = BackendSpec::from_json(
            &Json::parse(
                r#"{ "monte-carlo": { "rel_ci": 0.1, "max_trials": 50000, "ci_level": 0.99 } }"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            nested,
            BackendSpec::MonteCarlo {
                rel_ci: 0.1,
                max_trials: 50_000,
                batch: 2_000,
                ci_level: 0.99
            }
        );
        // Full-spec round trip through to_json/from_json.
        let mut spec = ScenarioSpec::baseline("mc");
        spec.backend = kind;
        spec.validate().unwrap();
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        // The precision surface maps 1:1.
        let p = kind.mc_precision().unwrap();
        assert_eq!(p.rel_ci, 0.02);
        assert_eq!(p.batch, 500);
        assert!(bare.count_model(9) != CountModel::GaussianSum);
    }

    #[test]
    fn monte_carlo_backend_rejects_bad_precision() {
        let mut spec = ScenarioSpec::baseline("bad");
        spec.backend = BackendSpec::MonteCarlo {
            rel_ci: 0.0,
            max_trials: 1000,
            batch: 100,
            ci_level: 0.95,
        };
        assert!(spec.validate().is_err(), "rel_ci = 0");
        spec.backend = BackendSpec::MonteCarlo {
            rel_ci: 0.05,
            max_trials: 10,
            batch: 100,
            ci_level: 0.95,
        };
        assert!(spec.validate().is_err(), "cap below one batch");
        spec.backend = BackendSpec::MonteCarlo {
            rel_ci: 0.05,
            max_trials: 1000,
            batch: 100,
            ci_level: 1.0,
        };
        assert!(spec.validate().is_err(), "ci_level = 1");
        assert!(
            ScenarioGrid::parse(
                r#"{ "scenarios": [ { "backend": { "monte-carlo": { "batch": 1 } } } ] }"#
            )
            .is_err(),
            "grid-level validation must catch it too"
        );
        // Mistyped keys and non-object payloads must error, not silently
        // fall back to 2M-trial defaults.
        assert!(
            BackendSpec::from_json(
                &Json::parse(r#"{ "monte-carlo": { "trials": 50000 } }"#).unwrap()
            )
            .is_err(),
            "unknown field `trials`"
        );
        assert!(
            BackendSpec::from_json(&Json::parse(r#"{ "monte-carlo": "fast" }"#).unwrap()).is_err(),
            "non-object payload"
        );
        assert!(
            BackendSpec::from_json(
                &Json::parse(r#"{ "kind": "monte-carlo", "rel-ci": 0.1 }"#).unwrap()
            )
            .is_err(),
            "mistyped key in the kind form"
        );
    }

    #[test]
    fn purity_spec_forms_and_round_trip() {
        // Scalar back-compat: a bare number is Short-mode fixed purity.
        let bare = PuritySpec::from_json(&Json::Num(0.999_9)).unwrap();
        assert_eq!(bare.mode, PurityMode::Short);
        assert_eq!(bare.dist, DistSpec::Fixed(0.999_9));
        assert!(bare.is_active());
        assert!(!PuritySpec::perfect().is_active());
        // Mode object form, dist defaulted.
        let removal =
            PuritySpec::from_json(&Json::parse(r#"{ "mode": "removal" }"#).unwrap()).unwrap();
        assert_eq!(removal.mode, PurityMode::Removal);
        assert_eq!(removal.dist, DistSpec::Fixed(1.0));
        // Mode object with a distribution payload.
        let spread = PuritySpec::from_json(
            &Json::parse(
                r#"{ "mode": "removal",
                     "dist": { "kind": "uniform", "lo": 0.999, "hi": 0.9999 } }"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert!(!spread.dist.is_fixed());
        assert!(spread.central() > 0.999 && spread.central() < 0.9999);
        // Round trips through the scenario serialization.
        for purity in [bare, removal, spread] {
            let mut spec = ScenarioSpec::baseline("p");
            spec.purity = purity;
            spec.validate().unwrap();
            assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        }
        // Bad values reject with actionable messages.
        assert!(PuritySpec::from_json(&Json::Num(0.0)).map_or_else(
            |e| e.to_string().contains("purity"),
            |p| p.validate().is_err()
        ));
        let err =
            PuritySpec::from_json(&Json::parse(r#"{ "mode": "shrot" }"#).unwrap()).unwrap_err();
        assert!(err.to_string().contains("short"), "message: {err}");
        let err =
            PuritySpec::from_json(&Json::parse(r#"{ "mode": "short", "dst": 0.9 }"#).unwrap())
                .unwrap_err();
        assert!(
            err.to_string().contains("did you mean `dist`"),
            "message: {err}"
        );
    }

    #[test]
    fn redundancy_forms_and_round_trip() {
        // Bare kind strings.
        assert_eq!(
            redundancy_from_json(&Json::Str("none".into())).unwrap(),
            RedundancyScheme::None
        );
        assert_eq!(
            redundancy_from_json(&Json::Str("tmr".into())).unwrap(),
            RedundancyScheme::Tmr
        );
        // Tagged object form.
        let spares = redundancy_from_json(
            &Json::parse(r#"{ "kind": "spare-units", "spares": 4, "unit_size": 65536 }"#).unwrap(),
        )
        .unwrap();
        assert_eq!(
            spares,
            RedundancyScheme::SpareUnits {
                spares: 4,
                unit_size: 65_536
            }
        );
        // Nested single-key shorthand; test_coverage defaults to 1.
        let tiles = redundancy_from_json(
            &Json::parse(r#"{ "repairable-tile": { "tiles": 64, "spare_tiles": 8 } }"#).unwrap(),
        )
        .unwrap();
        assert_eq!(
            tiles,
            RedundancyScheme::RepairableTile {
                tiles: 64,
                spare_tiles: 8,
                test_coverage: 1.0
            }
        );
        // Round trips through the scenario serialization.
        for scheme in [RedundancyScheme::Tmr, spares, tiles] {
            let mut spec = ScenarioSpec::baseline("r");
            spec.redundancy = scheme;
            spec.validate().unwrap();
            assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        }
        // Unknown kinds and parameters carry nearest-name suggestions.
        let err = redundancy_from_json(&Json::Str("tmrr".into())).unwrap_err();
        assert!(
            err.to_string().contains("did you mean `tmr`"),
            "message: {err}"
        );
        let err = redundancy_from_json(
            &Json::parse(r#"{ "kind": "spare-units", "spare": 4, "unit_size": 1 }"#).unwrap(),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("did you mean `spares`"),
            "message: {err}"
        );
        // A parameterized kind as a bare string needs the object form.
        assert!(redundancy_from_json(&Json::Str("spare-units".into())).is_err());
        // Validation rejects out-of-domain parameters and oversized schemes.
        let mut spec = ScenarioSpec::baseline("bad");
        spec.redundancy = RedundancyScheme::SpareUnits {
            spares: 1,
            unit_size: 0,
        };
        assert!(spec.validate().is_err(), "unit_size = 0");
        spec.redundancy = RedundancyScheme::SpareUnits {
            spares: INVERT_TERM_LIMIT + 1,
            unit_size: 1,
        };
        assert!(spec.validate().is_err(), "beyond INVERT_TERM_LIMIT");
        // Self-consistent M_min is rejected while faults are active.
        spec.redundancy = RedundancyScheme::Tmr;
        spec.m_min = MminSpec::SelfConsistent;
        assert!(spec.validate().is_err(), "self-consistent + redundancy");
    }

    #[test]
    fn purity_realizes_in_impurity_space() {
        let mut spec = ScenarioSpec::baseline("stoch");
        spec.purity = PuritySpec {
            dist: DistSpec::Uniform {
                lo: 0.999,
                hi: 0.999_99,
            },
            mode: PurityMode::Short,
        };
        assert!(spec.is_stochastic());
        assert!(spec.fault_active());
        let realized = spec.realize(41).unwrap();
        let v = realized.purity.dist.as_fixed().expect("realized to fixed");
        // In-domain up to the 2⁻¹⁰ relative impurity quantization grid.
        assert!(v > 0.998_9 && v < 1.0 - 0.9e-5, "in-domain draw: {v}");
        assert_eq!(realized.purity.mode, PurityMode::Short);
        // Byte-determinism: the same seed realizes identically.
        assert_eq!(spec.realize(41).unwrap(), realized);
        // Purity draws come from knob stream 3: the draw does not move
        // when another knob also becomes stochastic.
        let mut both = spec.clone();
        both.density = DistSpec::Uniform { lo: 0.9, hi: 1.1 };
        assert_eq!(
            both.realize(41).unwrap().purity.dist.as_fixed(),
            Some(v),
            "adding a density distribution must not shift purity draws"
        );
    }

    #[test]
    fn corner_spec_forms() {
        let named = CornerSpec::from_json(&Json::Str("ideal-removal".into())).unwrap();
        assert_eq!(named, CornerSpec::IdealRemoval);
        let custom =
            CornerSpec::from_json(&Json::parse(r#"{ "pm": 0.2, "p_rs": 0.1 }"#).unwrap()).unwrap();
        assert_eq!(
            custom,
            CornerSpec::Custom {
                pm: 0.2,
                p_rs: 0.1,
                p_rm: 1.0
            }
        );
        assert!(custom.corner().is_ok());
        assert!(CornerSpec::from_json(&Json::Str("bogus".into())).is_err());
    }
}
