//! `YieldService` — the long-lived, shared-cache front end of the engine.
//!
//! A [`YieldService`] owns one [`Pipeline`] with **bounded** LRU caches
//! and answers versioned [`crate::envelope`] requests from any number of
//! callers: clones share the same caches (the handle is an `Arc`), so a
//! daemon, a test harness, and a co-optimization loop all hit the same
//! warm `pF(W)` curves. Three entry styles, one semantics:
//!
//! * typed — [`YieldService::evaluate`], [`YieldService::sweep`] (returns
//!   a streaming [`SweepHandle`]), [`YieldService::describe`];
//! * envelopes — [`YieldService::stream`] / [`YieldService::handle`] map
//!   a [`YieldRequest`] to one or more [`YieldResponse`]s;
//! * wire — [`YieldService::handle_line`] parses one JSON-lines request
//!   and never fails, turning every problem into a structured error
//!   response (the `repro serve` daemon loop).
//!
//! Determinism contract: responses are a pure function of the request
//! (plus the seed it carries). Sweeps stream reports in index order under
//! `split_seed(seed, index)` regardless of worker count, and reports
//! carry no volatile cache provenance — so identical requests serialize
//! byte-identically whether caches are cold, warm, or shared.

use crate::engine::{CacheConfig, Pipeline};
use crate::envelope::{
    ErrorCode, RequestBody, ResponseBody, ServiceError, ServiceInfo, YieldRequest, YieldResponse,
    SCHEMA_VERSION,
};
use crate::report::ScenarioReport;
use crate::spec::ScenarioSpec;
use crate::wafer::{WaferEngine, WaferReport, WaferSpec};
use crate::Result;
use cnt_stats::seed::split_seed;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Service configuration: cache bounds plus sweep defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Bounds for the shared pipeline caches.
    pub cache: CacheConfig,
    /// Default worker-thread count for sweeps (requests may override).
    pub sweep_workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            cache: CacheConfig::default(),
            sweep_workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

struct ServiceInner {
    pipeline: Pipeline,
    config: ServiceConfig,
}

/// The shared-cache request/response front end (see the module docs).
///
/// Cloning is cheap and shares the caches; the service is `Send + Sync`.
#[derive(Clone)]
pub struct YieldService {
    inner: Arc<ServiceInner>,
}

impl Default for YieldService {
    fn default() -> Self {
        Self::with_config(ServiceConfig::default())
    }
}

impl std::fmt::Debug for YieldService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("YieldService")
            .field("config", &self.inner.config)
            .field("cache_stats", &self.inner.pipeline.cache_stats())
            .finish()
    }
}

impl YieldService {
    /// A service with default cache bounds and worker counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// A service with explicit configuration.
    pub fn with_config(config: ServiceConfig) -> Self {
        Self {
            inner: Arc::new(ServiceInner {
                pipeline: Pipeline::with_cache_config(config.cache),
                config,
            }),
        }
    }

    /// The shared pipeline behind this service (for callers that need the
    /// lower-level substrate getters: curves, libraries, design stats).
    pub fn pipeline(&self) -> &Pipeline {
        &self.inner.pipeline
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Capability discovery (the `describe` answer). Static per build, so
    /// repeated calls serialize byte-identically.
    pub fn describe(&self) -> ServiceInfo {
        ServiceInfo::default()
    }

    /// Evaluate one scenario on the shared bounded caches.
    ///
    /// # Errors
    ///
    /// Propagates validation, model, solver, and simulation errors.
    pub fn evaluate(&self, spec: &ScenarioSpec, seed: u64) -> Result<ScenarioReport> {
        self.inner.pipeline.evaluate(spec, seed)
    }

    /// Start a streaming sweep with the service's default worker count.
    /// Scenario `i` evaluates under `split_seed(seed, i)` — the same
    /// contract as the legacy `SweepRunner`.
    pub fn sweep(&self, specs: Vec<ScenarioSpec>, seed: u64) -> SweepHandle {
        self.sweep_with_workers(specs, seed, self.inner.config.sweep_workers)
    }

    /// Start a streaming sweep with an explicit worker count. Workers only
    /// change wall-clock, never results or delivery order.
    pub fn sweep_with_workers(
        &self,
        specs: Vec<ScenarioSpec>,
        seed: u64,
        workers: usize,
    ) -> SweepHandle {
        SweepHandle::spawn(Arc::clone(&self.inner), specs, seed, workers)
    }

    /// Run a wafer-scale random-field workload on the shared caches with
    /// the service's default worker count.
    ///
    /// # Errors
    ///
    /// Propagates validation, model, and solver errors.
    pub fn wafer(&self, spec: &WaferSpec, seed: u64) -> Result<WaferReport> {
        self.wafer_with_workers(spec, seed, self.inner.config.sweep_workers)
    }

    /// Run a wafer workload with an explicit worker count. Workers only
    /// change wall-clock — the report is byte-identical for any count.
    ///
    /// # Errors
    ///
    /// Propagates validation, model, and solver errors.
    pub fn wafer_with_workers(
        &self,
        spec: &WaferSpec,
        seed: u64,
        workers: usize,
    ) -> Result<WaferReport> {
        WaferEngine::new(&self.inner.pipeline).run(spec, seed, workers.max(1))
    }

    /// Answer one request, streaming every response through `emit` (an
    /// `evaluate`/`describe` request emits exactly one response; a `sweep`
    /// emits one per scenario plus a terminator).
    pub fn stream(&self, request: &YieldRequest, emit: &mut dyn FnMut(YieldResponse)) {
        self.stream_while(request, &mut |response| {
            emit(response);
            true
        });
    }

    /// The cancellation-aware form of [`YieldService::stream`]: `emit`
    /// returns `false` once the client is gone (disconnected mid-sweep,
    /// shard torn down), at which point streaming stops and any in-flight
    /// sweep is cancelled through its [`SweepHandle`] — workers stop
    /// claiming scenarios and the shard's queue slot frees immediately
    /// instead of computing into the void. Returns `false` when the
    /// exchange was aborted that way, `true` when every response was
    /// delivered.
    pub fn stream_while(
        &self,
        request: &YieldRequest,
        emit: &mut dyn FnMut(YieldResponse) -> bool,
    ) -> bool {
        if request.schema != SCHEMA_VERSION {
            return emit(YieldResponse::error(
                &request.id,
                ServiceError {
                    code: ErrorCode::UnsupportedSchema {
                        requested: request.schema,
                    },
                    message: format!(
                        "schema {} is not supported (this build speaks schema {SCHEMA_VERSION})",
                        request.schema
                    ),
                },
            ));
        }
        match &request.body {
            RequestBody::Describe => emit(YieldResponse::new(
                &request.id,
                ResponseBody::Describe(self.describe()),
            )),
            RequestBody::Evaluate { spec, seed } => match self.evaluate(spec, *seed) {
                Ok(report) => emit(YieldResponse::new(
                    &request.id,
                    ResponseBody::Report(report),
                )),
                Err(e) => emit(YieldResponse::error(
                    &request.id,
                    ServiceError::from_pipeline(&e),
                )),
            },
            RequestBody::Sweep {
                grid,
                seed,
                workers,
            } => {
                let total = grid.scenarios.len() as u64;
                let workers = workers.unwrap_or(self.inner.config.sweep_workers);
                let mut handle = self.sweep_with_workers(grid.scenarios.clone(), *seed, workers);
                let mut failed = 0;
                let mut delivered = 0;
                while let Some(item) = handle.next() {
                    delivered += 1;
                    let wanted = match item.report {
                        Ok(report) => emit(YieldResponse::new(
                            &request.id,
                            ResponseBody::SweepReport {
                                index: item.index as u64,
                                total,
                                report,
                            },
                        )),
                        Err(e) => {
                            failed += 1;
                            emit(YieldResponse::error(
                                &request.id,
                                ServiceError::from_pipeline(&e),
                            ))
                        }
                    };
                    if !wanted {
                        // The client hung up mid-stream: stop the workers
                        // (in-flight scenarios finish, no new ones start)
                        // and free this slot without a terminator — nobody
                        // is listening for one.
                        handle.cancel();
                        return false;
                    }
                }
                // A worker that died (panic in the engine) leaves a gap the
                // handle cannot stream past; never dress that up as a clean
                // completion — report the shortfall and count it as failed.
                let missing = total - delivered;
                if missing > 0 {
                    failed += missing;
                    if !emit(YieldResponse::error(
                        &request.id,
                        ServiceError {
                            code: ErrorCode::Internal,
                            message: format!(
                                "sweep truncated: {missing} of {total} scenarios were never \
                                 delivered (worker failure)"
                            ),
                        },
                    )) {
                        return false;
                    }
                }
                emit(YieldResponse::new(
                    &request.id,
                    ResponseBody::SweepDone { total, failed },
                ))
            }
            RequestBody::Wafer {
                spec,
                seed,
                workers,
            } => {
                let workers = workers.unwrap_or(self.inner.config.sweep_workers);
                match self.wafer_with_workers(spec, *seed, workers) {
                    Ok(report) => {
                        emit(YieldResponse::new(&request.id, ResponseBody::Wafer(report)))
                    }
                    Err(e) => emit(YieldResponse::error(
                        &request.id,
                        ServiceError::from_pipeline(&e),
                    )),
                }
            }
            RequestBody::CoOpt { .. } => {
                // The search engine lives above this crate (`cnfet-opt`);
                // a bare yield service advertises that honestly instead of
                // guessing.
                emit(YieldResponse::error(
                    &request.id,
                    ServiceError {
                        code: ErrorCode::UnsupportedBody {
                            body: "co_opt".into(),
                        },
                        message: "co_opt requests are served by the co-optimization front \
                                  end (cnfet-opt `OptService` / `repro serve`), not a bare \
                                  yield service"
                            .into(),
                    },
                ))
            }
        }
    }

    /// Answer one request, collecting all responses (convenience wrapper
    /// over [`YieldService::stream`] for non-streaming callers).
    pub fn handle(&self, request: &YieldRequest) -> Vec<YieldResponse> {
        let mut out = Vec::new();
        self.stream(request, &mut |response| out.push(response));
        out
    }

    /// Parse and answer one JSON-lines request. Never fails: malformed
    /// input becomes a structured error response with a best-effort id —
    /// the daemon loop of `repro serve`.
    pub fn handle_line(&self, line: &str, emit: &mut dyn FnMut(YieldResponse)) {
        crate::envelope::dispatch_line(line, emit, |request, emit| self.stream(request, emit));
    }

    /// The cancellation-aware form of [`YieldService::handle_line`] (see
    /// [`YieldService::stream_while`] for the `emit` contract). Returns
    /// `false` when the exchange was aborted because the client vanished.
    pub fn handle_line_while(
        &self,
        line: &str,
        emit: &mut dyn FnMut(YieldResponse) -> bool,
    ) -> bool {
        crate::envelope::dispatch_line_while(line, emit, |request, emit| {
            self.stream_while(request, emit)
        })
    }
}

impl crate::router::LineServer for YieldService {
    fn serve_line(&self, line: &str, emit: &mut dyn FnMut(YieldResponse) -> bool) -> bool {
        self.handle_line_while(line, emit)
    }
}

/// Progress snapshot of a streaming sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgress {
    /// Scenarios whose evaluation has finished (any order).
    pub completed: usize,
    /// Reports already handed to the consumer (index order).
    pub delivered: usize,
    /// Scenarios in the sweep.
    pub total: usize,
}

/// One streamed sweep result.
#[derive(Debug)]
pub struct SweepItem {
    /// Index of the scenario within the sweep's spec list.
    pub index: usize,
    /// The evaluation outcome.
    pub report: Result<ScenarioReport>,
}

/// A handle to an in-flight sweep: an iterator of [`SweepItem`]s in
/// strict index order, plus cooperative cancellation and progress.
///
/// Workers claim scenario indices from a shared counter and evaluate out
/// of order; the handle reorders on delivery, so `next()` blocks until
/// the next index is available. After [`SweepHandle::cancel`], workers
/// stop claiming new scenarios (in-flight ones finish) and the stream
/// ends at the first undelivered index. Dropping the handle cancels and
/// joins the workers.
pub struct SweepHandle {
    total: usize,
    next_index: usize,
    delivered: usize,
    pending: BTreeMap<usize, Result<ScenarioReport>>,
    rx: mpsc::Receiver<(usize, Result<ScenarioReport>)>,
    cancel: Arc<AtomicBool>,
    completed: Arc<AtomicUsize>,
    workers: Vec<JoinHandle<()>>,
}

impl SweepHandle {
    fn spawn(
        inner: Arc<ServiceInner>,
        specs: Vec<ScenarioSpec>,
        seed: u64,
        workers: usize,
    ) -> Self {
        let total = specs.len();
        let specs = Arc::new(specs);
        let cancel = Arc::new(AtomicBool::new(false));
        let completed = Arc::new(AtomicUsize::new(0));
        let claim = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        let workers = workers.max(1).min(total.max(1));
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let specs = Arc::clone(&specs);
                let cancel = Arc::clone(&cancel);
                let completed = Arc::clone(&completed);
                let claim = Arc::clone(&claim);
                let tx = tx.clone();
                std::thread::spawn(move || loop {
                    if cancel.load(Ordering::Acquire) {
                        return;
                    }
                    let i = claim.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        return;
                    }
                    let report = inner
                        .pipeline
                        .evaluate(&specs[i], split_seed(seed, i as u64));
                    completed.fetch_add(1, Ordering::Release);
                    // The consumer may have dropped the handle mid-stream;
                    // a closed channel just means nobody wants the rest.
                    if tx.send((i, report)).is_err() {
                        return;
                    }
                })
            })
            .collect();
        Self {
            total,
            next_index: 0,
            delivered: 0,
            pending: BTreeMap::new(),
            rx,
            cancel,
            completed,
            workers: handles,
        }
    }

    /// The number of scenarios in the sweep.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Ask the workers to stop after their in-flight scenarios. Items
    /// already evaluated and contiguous with the delivered prefix still
    /// stream out; the iterator then ends.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// A progress snapshot (safe to call between `next()` calls).
    pub fn progress(&self) -> SweepProgress {
        SweepProgress {
            completed: self.completed.load(Ordering::Acquire),
            delivered: self.delivered,
            total: self.total,
        }
    }

    /// Block until the next in-index-order item is available; `None` once
    /// the sweep is exhausted or cancellation truncated the stream.
    #[allow(clippy::should_implement_trait)] // Iterator::next is the forwarding impl below
    pub fn next(&mut self) -> Option<SweepItem> {
        while self.next_index < self.total {
            if let Some(report) = self.pending.remove(&self.next_index) {
                let index = self.next_index;
                self.next_index += 1;
                self.delivered += 1;
                return Some(SweepItem { index, report });
            }
            match self.rx.recv() {
                Ok((i, report)) => {
                    self.pending.insert(i, report);
                }
                // Workers are gone (finished or cancelled). Whatever is
                // buffered beyond a gap can never be delivered in order.
                Err(mpsc::RecvError) => return None,
            }
        }
        None
    }
}

impl Iterator for SweepHandle {
    type Item = SweepItem;

    fn next(&mut self) -> Option<SweepItem> {
        SweepHandle::next(self)
    }
}

impl Drop for SweepHandle {
    fn drop(&mut self) {
        self.cancel();
        // Unblock senders by draining, then join.
        while self.rx.try_recv().is_ok() {}
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BackendSpec, RhoSpec};

    fn fast_spec(name: &str) -> ScenarioSpec {
        let mut spec = ScenarioSpec::baseline(name);
        spec.backend = BackendSpec::GaussianSum;
        spec.fast_design = true;
        spec.rho = RhoSpec::Paper;
        spec
    }

    #[test]
    fn clones_share_caches() {
        let service = YieldService::new();
        let clone = service.clone();
        service.evaluate(&fast_spec("warm"), 1).unwrap();
        assert!(
            clone.pipeline().cache_stats().curves > 0,
            "clone must see the warmed cache"
        );
    }

    #[test]
    fn evaluate_matches_pipeline() {
        let service = YieldService::new();
        let spec = fast_spec("x");
        let a = service.evaluate(&spec, 3).unwrap();
        let b = Pipeline::new().evaluate(&spec, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn describe_is_static() {
        let service = YieldService::new();
        let a = YieldResponse::new("d", ResponseBody::Describe(service.describe()));
        let b = YieldResponse::new("d", ResponseBody::Describe(service.describe()));
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }

    #[test]
    fn unsupported_schema_is_rejected() {
        let service = YieldService::new();
        let mut request = YieldRequest::describe("v2");
        request.schema = 2;
        let responses = service.handle(&request);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].id, "v2");
        match &responses[0].body {
            ResponseBody::Error(e) => {
                assert_eq!(e.code, ErrorCode::UnsupportedSchema { requested: 2 });
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn handle_line_never_panics_and_correlates_ids() {
        let service = YieldService::new();
        let mut responses = Vec::new();
        service.handle_line("this is not json", &mut |r| responses.push(r));
        service.handle_line(r#"{ "id": "bad-1", "schema": 1 }"#, &mut |r| {
            responses.push(r)
        });
        assert_eq!(responses.len(), 2);
        assert!(responses.iter().all(YieldResponse::is_error));
        assert_eq!(responses[0].id, "", "unparseable line has no id");
        assert_eq!(responses[1].id, "bad-1", "id recovered from bad envelope");
    }
}
