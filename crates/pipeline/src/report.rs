//! Structured scenario results and artifact emission.
//!
//! A [`ScenarioReport`] is a pure function of `(spec, seed)` — it carries
//! no volatile provenance (cache warmth, shared counters), so repeated
//! evaluations and sweeps at any worker count serialize byte-identically.
//! Shared-cache provenance lives on
//! [`crate::engine::Pipeline::cache_stats`] instead.

use crate::json::Json;
use crate::{PipelineError, Result};
use std::path::{Path, PathBuf};

fn bad_report(msg: impl Into<String>) -> PipelineError {
    PipelineError::InvalidSpec {
        field: "report",
        msg: msg.into(),
    }
}

/// Required object field as f64.
fn req_f64(v: &Json, key: &str) -> Result<f64> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad_report(format!("missing numeric field `{key}`")))
}

/// Required object field as a string.
fn req_str(v: &Json, key: &str) -> Result<String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad_report(format!("missing string field `{key}`")))
}

/// Provenance of a Monte-Carlo-backend evaluation: how much simulation a
/// scenario consumed and how tight the estimate at `W_min` is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McBackendReport {
    /// Total trials across every width the solve touched.
    pub trials: u64,
    /// Distinct widths evaluated stochastically.
    pub widths_evaluated: u64,
    /// Confidence-interval lower bound of `pF(W_min)`.
    pub ci_lo: f64,
    /// Confidence-interval upper bound of `pF(W_min)`.
    pub ci_hi: f64,
    /// Confidence level of the bounds.
    pub ci_level: f64,
    /// Whether every width met the precision target before `max_trials`.
    pub converged: bool,
}

impl McBackendReport {
    /// Serialize as the nested `mc` provenance object.
    pub fn to_json(self) -> Json {
        Json::Obj(vec![
            ("trials".into(), Json::Num(self.trials as f64)),
            (
                "widths_evaluated".into(),
                Json::Num(self.widths_evaluated as f64),
            ),
            ("ci_lo".into(), Json::Num(self.ci_lo)),
            ("ci_hi".into(), Json::Num(self.ci_hi)),
            ("ci_level".into(), Json::Num(self.ci_level)),
            ("converged".into(), Json::Bool(self.converged)),
        ])
    }

    /// Parse the provenance object written by [`McBackendReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self> {
        Ok(Self {
            trials: req_f64(v, "trials")? as u64,
            widths_evaluated: req_f64(v, "widths_evaluated")? as u64,
            ci_lo: req_f64(v, "ci_lo")?,
            ci_hi: req_f64(v, "ci_hi")?,
            ci_level: req_f64(v, "ci_level")?,
            converged: v
                .get("converged")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad_report("missing boolean field `converged`"))?,
        })
    }
}

/// Provenance of the fault subsystem: what the purity/redundancy knobs
/// did to this scenario's solve (present iff the spec activated them).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Realized s-CNT purity.
    pub purity: f64,
    /// Purity defect mode (`short`, `removal`).
    pub mode: String,
    /// Per-transistor metallic-short probability at the solved `W_min`
    /// (0 in `removal` mode — metallic CNTs thin the count instead).
    pub p_short: f64,
    /// Redundancy scheme kind (`none`, `tmr`, …).
    pub scheme: String,
    /// Area multiplier the scheme charges (≥ 1).
    pub area_overhead: f64,
    /// Per-cell failure budget after redundancy recovery — what the
    /// width solve targets instead of the raw chip-yield inversion.
    pub p_budget: f64,
    /// Effective chip yield after redundancy recovery at the solved
    /// operating point.
    pub recovered_yield: f64,
    /// Yield shortfall `max(0, target − recovered)`: 0 when the solve
    /// met the target, positive when purity defects made it infeasible.
    pub shortfall: f64,
    /// How the recovered yield was composed (`exact`, `monte-carlo`).
    pub method: String,
    /// Whether the solve met the yield target.
    pub met_target: bool,
}

impl FaultReport {
    /// Serialize as the nested `fault` provenance object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("purity".into(), Json::Num(self.purity)),
            ("mode".into(), Json::Str(self.mode.clone())),
            ("p_short".into(), Json::Num(self.p_short)),
            ("scheme".into(), Json::Str(self.scheme.clone())),
            ("area_overhead".into(), Json::Num(self.area_overhead)),
            ("p_budget".into(), Json::Num(self.p_budget)),
            ("recovered_yield".into(), Json::Num(self.recovered_yield)),
            ("shortfall".into(), Json::Num(self.shortfall)),
            ("method".into(), Json::Str(self.method.clone())),
            ("met_target".into(), Json::Bool(self.met_target)),
        ])
    }

    /// Parse the provenance object written by [`FaultReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self> {
        Ok(Self {
            purity: req_f64(v, "purity")?,
            mode: req_str(v, "mode")?,
            p_short: req_f64(v, "p_short")?,
            scheme: req_str(v, "scheme")?,
            area_overhead: req_f64(v, "area_overhead")?,
            p_budget: req_f64(v, "p_budget")?,
            recovered_yield: req_f64(v, "recovered_yield")?,
            shortfall: req_f64(v, "shortfall")?,
            method: req_str(v, "method")?,
            met_target: v
                .get("met_target")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad_report("missing boolean field `met_target`"))?,
        })
    }
}

/// The evaluated outcome of one [`crate::spec::ScenarioSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub name: String,
    /// The seed the sweep assigned (drives the optional MC cross-check).
    pub seed: u64,
    /// Library name.
    pub library: String,
    /// Technology node (nm).
    pub node_nm: f64,
    /// Processing-corner label.
    pub corner: String,
    /// Correlation-scenario name.
    pub correlation: String,
    /// Count back-end name.
    pub backend: String,
    /// Yield target.
    pub yield_target: f64,
    /// Chip transistor count `M`.
    pub m_transistors: f64,
    /// Minimum-sized device count `M_min` (fixed or self-consistent).
    pub m_min: f64,
    /// Row size `M_Rmin` of the Eq. (3.2) model.
    pub m_r_min: f64,
    /// Requirement relaxation applied (1 = uncorrelated).
    pub relaxation: f64,
    /// The device-level requirement `pF_req`.
    pub p_req: f64,
    /// The solved upsizing threshold (nm).
    pub w_min_nm: f64,
    /// Achieved `pF(W_min)`.
    pub p_at_w_min: f64,
    /// Gate-capacitance upsizing penalty.
    pub upsizing_penalty: f64,
    /// Conditional-MC estimate of the non-aligned row failure probability
    /// (when the spec requested trials).
    pub unaligned_p_rf_mc: Option<f64>,
    /// Monte-Carlo-backend provenance: trials used and the CI of
    /// `pF(W_min)` (present iff the scenario ran the `monte-carlo`
    /// back-end).
    pub mc: Option<McBackendReport>,
    /// Fault-subsystem provenance: purity defects and redundancy
    /// recovery (present iff the spec activated either knob).
    pub fault: Option<FaultReport>,
}

impl ScenarioReport {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("seed".into(), Json::from_u64(self.seed)),
            ("library".into(), Json::Str(self.library.clone())),
            ("node_nm".into(), Json::Num(self.node_nm)),
            ("corner".into(), Json::Str(self.corner.clone())),
            ("correlation".into(), Json::Str(self.correlation.clone())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("yield_target".into(), Json::Num(self.yield_target)),
            ("m_transistors".into(), Json::Num(self.m_transistors)),
            ("m_min".into(), Json::Num(self.m_min)),
            ("m_r_min".into(), Json::Num(self.m_r_min)),
            ("relaxation".into(), Json::Num(self.relaxation)),
            ("p_req".into(), Json::Num(self.p_req)),
            ("w_min_nm".into(), Json::Num(self.w_min_nm)),
            ("p_at_w_min".into(), Json::Num(self.p_at_w_min)),
            ("upsizing_penalty".into(), Json::Num(self.upsizing_penalty)),
        ];
        if let Some(p) = self.unaligned_p_rf_mc {
            fields.push(("unaligned_p_rf_mc".into(), Json::Num(p)));
        }
        if let Some(mc) = self.mc {
            fields.push(("mc".into(), mc.to_json()));
        }
        if let Some(fault) = &self.fault {
            fields.push(("fault".into(), fault.to_json()));
        }
        Json::Obj(fields)
    }

    /// Parse a report object written by [`ScenarioReport::to_json`] — the
    /// client half of the service wire format.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self> {
        if v.as_object().is_none() {
            return Err(bad_report("report must be an object"));
        }
        Ok(Self {
            name: req_str(v, "name")?,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad_report("missing u64 field `seed`"))?,
            library: req_str(v, "library")?,
            node_nm: req_f64(v, "node_nm")?,
            corner: req_str(v, "corner")?,
            correlation: req_str(v, "correlation")?,
            backend: req_str(v, "backend")?,
            yield_target: req_f64(v, "yield_target")?,
            m_transistors: req_f64(v, "m_transistors")?,
            m_min: req_f64(v, "m_min")?,
            m_r_min: req_f64(v, "m_r_min")?,
            relaxation: req_f64(v, "relaxation")?,
            p_req: req_f64(v, "p_req")?,
            w_min_nm: req_f64(v, "w_min_nm")?,
            p_at_w_min: req_f64(v, "p_at_w_min")?,
            upsizing_penalty: req_f64(v, "upsizing_penalty")?,
            unaligned_p_rf_mc: match v.get("unaligned_p_rf_mc") {
                None => None,
                Some(p) => Some(
                    p.as_f64()
                        .ok_or_else(|| bad_report("`unaligned_p_rf_mc` must be a number"))?,
                ),
            },
            mc: match v.get("mc") {
                None => None,
                Some(mc) => Some(McBackendReport::from_json(mc)?),
            },
            fault: match v.get("fault") {
                None => None,
                Some(fault) => Some(FaultReport::from_json(fault)?),
            },
        })
    }
}

/// One evaluated co-optimization candidate, as it appears in Pareto
/// artifacts: the axis choices that produced it plus the solved metrics
/// and its two ranking scalars (process demand, scalarized cost).
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The candidate's self-describing scenario name
    /// (`<study>/<key>=<value>/…`).
    pub scenario: String,
    /// The axis choice indices, in spec axis order (the candidate's
    /// canonical identity within the search space).
    pub choice: Vec<u64>,
    /// Normalized process-demand index in `[0, 1]` (0 = least demanding
    /// value on every axis).
    pub demand: f64,
    /// The scalarized circuit cost (`cnfet_core::objective::CostWeights`).
    pub cost: f64,
    /// The solved upsizing threshold (nm).
    pub w_min_nm: f64,
    /// The gate-capacitance upsizing penalty at that threshold.
    pub upsizing_penalty: f64,
    /// The device-level requirement the solve imposed.
    pub p_req: f64,
    /// The achieved `pF(W_min)`.
    pub p_at_w_min: f64,
    /// The correlation relaxation factor the candidate enjoyed.
    pub relaxation: f64,
}

impl ParetoPoint {
    /// True when `self` Pareto-dominates `other` over the minimized
    /// `(demand, cost)` pair: no worse on both, strictly better on one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.demand <= other.demand
            && self.cost <= other.cost
            && (self.demand < other.demand || self.cost < other.cost)
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            (
                "choice".into(),
                Json::Arr(self.choice.iter().map(|&i| Json::Num(i as f64)).collect()),
            ),
            ("demand".into(), Json::Num(self.demand)),
            ("cost".into(), Json::Num(self.cost)),
            ("w_min_nm".into(), Json::Num(self.w_min_nm)),
            ("upsizing_penalty".into(), Json::Num(self.upsizing_penalty)),
            ("p_req".into(), Json::Num(self.p_req)),
            ("p_at_w_min".into(), Json::Num(self.p_at_w_min)),
            ("relaxation".into(), Json::Num(self.relaxation)),
        ])
    }

    /// Parse a point written by [`ParetoPoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self> {
        let choice = v
            .get("choice")
            .and_then(Json::as_array)
            .ok_or_else(|| bad_report("point needs a `choice` array"))?
            .iter()
            .map(|i| {
                i.as_u64()
                    .ok_or_else(|| bad_report("`choice` entries must be non-negative integers"))
            })
            .collect::<Result<_>>()?;
        Ok(Self {
            scenario: req_str(v, "scenario")?,
            choice,
            demand: req_f64(v, "demand")?,
            cost: req_f64(v, "cost")?,
            w_min_nm: req_f64(v, "w_min_nm")?,
            upsizing_penalty: req_f64(v, "upsizing_penalty")?,
            p_req: req_f64(v, "p_req")?,
            p_at_w_min: req_f64(v, "p_at_w_min")?,
            relaxation: req_f64(v, "relaxation")?,
        })
    }
}

/// The non-dominated frontier of an evaluated candidate set, minimized
/// over `(process demand, circuit cost)` — the trade study a design team
/// reads off a co-optimization run.
///
/// Construction prunes dominated points and orders the survivors by
/// ascending demand (ties by cost, then scenario name), so the front is a
/// deterministic, diffable artifact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParetoFront {
    points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// Build the front from every evaluated candidate, pruning dominated
    /// points.
    pub fn from_points(mut candidates: Vec<ParetoPoint>) -> Self {
        candidates.sort_by(|a, b| {
            a.demand
                .total_cmp(&b.demand)
                .then(a.cost.total_cmp(&b.cost))
                .then(a.scenario.cmp(&b.scenario))
        });
        let mut points: Vec<ParetoPoint> = Vec::new();
        for candidate in candidates {
            if points.iter().any(|kept| kept.dominates(&candidate)) {
                continue;
            }
            // A later candidate never dominates an earlier kept one under
            // the (demand asc, cost asc) sort, so one forward pass is
            // enough; equal (demand, cost) duplicates collapse to the
            // first by scenario order.
            if points
                .iter()
                .any(|kept| kept.demand == candidate.demand && kept.cost == candidate.cost)
            {
                continue;
            }
            points.push(candidate);
        }
        Self { points }
    }

    /// The surviving points, ascending by demand.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of non-dominated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the front is empty (no candidates were evaluated).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Serialize as a JSON array of points.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.points.iter().map(ParetoPoint::to_json).collect())
    }

    /// Parse a front written by [`ParetoFront::to_json`]. The points are
    /// re-pruned on parse, so a hand-edited artifact cannot smuggle a
    /// dominated point back in.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] on malformed points.
    pub fn from_json(v: &Json) -> Result<Self> {
        let points = v
            .as_array()
            .ok_or_else(|| bad_report("front must be an array"))?
            .iter()
            .map(ParetoPoint::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self::from_points(points))
    }
}

/// One precision rung of a successive-halving ladder: how loose the
/// Monte-Carlo confidence target was, how many fresh evaluations the rung
/// spent, and how many candidates it promoted to the next-tighter rung.
#[derive(Debug, Clone, PartialEq)]
pub struct RungReport {
    /// Factor the spec's `rel_ci` was relaxed by on this rung (1 = the
    /// spec's own precision).
    pub relax: f64,
    /// Fresh candidate evaluations spent on this rung.
    pub evaluations: u64,
    /// Candidates promoted to the next rung (0 on the final rung).
    pub promoted: u64,
}

impl RungReport {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("relax".into(), Json::Num(self.relax)),
            ("evaluations".into(), Json::Num(self.evaluations as f64)),
            ("promoted".into(), Json::Num(self.promoted as f64)),
        ])
    }

    /// Parse a rung written by [`RungReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self> {
        let num_u64 = |key: &str| -> Result<u64> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad_report(format!("rung needs a u64 `{key}`")))
        };
        Ok(Self {
            relax: req_f64(v, "relax")?,
            evaluations: num_u64("evaluations")?,
            promoted: num_u64("promoted")?,
        })
    }
}

/// Search provenance of an adaptive run: generations evolved, how many
/// evaluations ran at coarse vs full Monte-Carlo precision, and the
/// per-rung promotion ledger of a halving ladder. Like everything else in
/// the report it is a pure function of `(spec, seed)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchReport {
    /// Generations a population-based searcher evolved (0 for a plain
    /// initial-population scan).
    pub generations: u64,
    /// Fresh evaluations that ran at relaxed (coarse) MC precision.
    pub coarse_evaluations: u64,
    /// Fresh evaluations that ran at the spec's own (full) precision —
    /// the same count as the report's top-level `evaluations`.
    pub final_evaluations: u64,
    /// The precision ladder, coarsest rung first (empty without halving).
    pub rungs: Vec<RungReport>,
}

impl SearchReport {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("generations".into(), Json::Num(self.generations as f64)),
            (
                "coarse_evaluations".into(),
                Json::Num(self.coarse_evaluations as f64),
            ),
            (
                "final_evaluations".into(),
                Json::Num(self.final_evaluations as f64),
            ),
            (
                "rungs".into(),
                Json::Arr(self.rungs.iter().map(RungReport::to_json).collect()),
            ),
        ])
    }

    /// Parse a block written by [`SearchReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self> {
        let num_u64 = |key: &str| -> Result<u64> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad_report(format!("search block needs a u64 `{key}`")))
        };
        let rungs = v
            .get("rungs")
            .and_then(Json::as_array)
            .ok_or_else(|| bad_report("search block needs a `rungs` array"))?
            .iter()
            .map(RungReport::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            generations: num_u64("generations")?,
            coarse_evaluations: num_u64("coarse_evaluations")?,
            final_evaluations: num_u64("final_evaluations")?,
            rungs,
        })
    }
}

/// The artifact of one co-optimization run: provenance, the best
/// candidate by scalarized cost, and the Pareto front over everything the
/// searcher evaluated. A pure function of `(spec, seed)` — worker counts
/// never change a byte.
#[derive(Debug, Clone, PartialEq)]
pub struct CoOptReport {
    /// Study name (from the spec).
    pub name: String,
    /// The strategy that ran (`grid`, `coordinate-descent`, `genetic`,
    /// `halving+…`).
    pub searcher: String,
    /// The base seed of the run.
    pub seed: u64,
    /// Size of the declared search space.
    pub candidates: u64,
    /// Distinct candidates evaluated at the spec's own (full) precision —
    /// the ones the `best`/`front` fields are built from.
    pub evaluations: u64,
    /// Adaptive-search provenance (generations, precision rungs); absent
    /// for the non-adaptive grid and coordinate-descent strategies.
    pub search: Option<SearchReport>,
    /// The minimum-cost evaluated candidate (ties broken by canonical
    /// choice order).
    pub best: ParetoPoint,
    /// The non-dominated frontier over every evaluated candidate.
    pub front: ParetoFront,
}

impl CoOptReport {
    /// Serialize as a JSON object (the `search` block is omitted, not
    /// nulled, for non-adaptive runs — old artifacts stay byte-stable).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("searcher".into(), Json::Str(self.searcher.clone())),
            ("seed".into(), Json::from_u64(self.seed)),
            ("candidates".into(), Json::Num(self.candidates as f64)),
            ("evaluations".into(), Json::Num(self.evaluations as f64)),
        ];
        if let Some(search) = &self.search {
            fields.push(("search".into(), search.to_json()));
        }
        fields.push(("best".into(), self.best.to_json()));
        fields.push(("front".into(), self.front.to_json()));
        Json::Obj(fields)
    }

    /// Parse a report written by [`CoOptReport::to_json`] — the client
    /// half of the `co_opt` wire format.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self> {
        let num_u64 = |key: &str| -> Result<u64> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad_report(format!("missing u64 field `{key}`")))
        };
        Ok(Self {
            name: req_str(v, "name")?,
            searcher: req_str(v, "searcher")?,
            seed: num_u64("seed")?,
            candidates: num_u64("candidates")?,
            evaluations: num_u64("evaluations")?,
            search: v.get("search").map(SearchReport::from_json).transpose()?,
            best: ParetoPoint::from_json(
                v.get("best").ok_or_else(|| bad_report("missing `best`"))?,
            )?,
            front: ParetoFront::from_json(
                v.get("front")
                    .ok_or_else(|| bad_report("missing `front`"))?,
            )?,
        })
    }
}

/// Sanitize a scenario name into a filesystem-safe artifact stem.
pub(crate) fn artifact_stem(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if out.is_empty() {
        out.push_str("scenario");
    }
    out
}

/// Write a co-optimization artifact as `<name>.coopt.json`, returning the
/// path. The serialization is pretty-printed with stable key order, so
/// identical reports are byte-identical on disk.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_coopt_report(dir: &Path, report: &CoOptReport) -> Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.coopt.json", artifact_stem(&report.name)));
    std::fs::write(&path, report.to_json().to_string_pretty())?;
    Ok(path)
}

/// Write one JSON artifact per report plus a combined
/// `sweep-summary.json`, returning the paths written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_reports(dir: &Path, reports: &[ScenarioReport]) -> Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::with_capacity(reports.len() + 1);
    for report in reports {
        let path = dir.join(format!("{}.json", artifact_stem(&report.name)));
        std::fs::write(&path, report.to_json().to_string_pretty())?;
        written.push(path);
    }
    let summary = Json::Arr(reports.iter().map(ScenarioReport::to_json).collect());
    let path = dir.join("sweep-summary.json");
    std::fs::write(&path, summary.to_string_pretty())?;
    written.push(path);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str) -> ScenarioReport {
        ScenarioReport {
            name: name.into(),
            seed: 7,
            library: "nangate45".into(),
            node_nm: 45.0,
            corner: "pm=33%, pRs=30%".into(),
            correlation: "none".into(),
            backend: "convolution".into(),
            yield_target: 0.9,
            m_transistors: 1e8,
            m_min: 33e6,
            m_r_min: 360.0,
            relaxation: 1.0,
            p_req: 3e-9,
            w_min_nm: 155.0,
            p_at_w_min: 2.9e-9,
            upsizing_penalty: 0.11,
            unaligned_p_rf_mc: None,
            mc: None,
            fault: None,
        }
    }

    #[test]
    fn report_serializes_and_reparses() {
        let r = report("a/b c");
        let json = r.to_json();
        let reparsed = Json::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed.get("w_min_nm").unwrap().as_f64(), Some(155.0));
        assert_eq!(reparsed.get("name").unwrap().as_str(), Some("a/b c"));
        assert!(reparsed.get("unaligned_p_rf_mc").is_none());
        assert!(reparsed.get("mc").is_none());
        assert_eq!(
            ScenarioReport::from_json(&reparsed).unwrap(),
            r,
            "reports round-trip through the wire format"
        );
    }

    #[test]
    fn report_round_trips_with_optional_fields() {
        let mut r = report("full");
        r.unaligned_p_rf_mc = Some(4.5e-7);
        r.mc = Some(McBackendReport {
            trials: 1000,
            widths_evaluated: 7,
            ci_lo: 1e-9,
            ci_hi: 2e-9,
            ci_level: 0.95,
            converged: false,
        });
        let back =
            ScenarioReport::from_json(&Json::parse(&r.to_json().to_string_pretty()).unwrap())
                .unwrap();
        assert_eq!(back, r);
        assert!(
            ScenarioReport::from_json(&Json::Num(1.0)).is_err(),
            "non-objects are rejected"
        );
        assert!(
            ScenarioReport::from_json(&Json::Obj(vec![])).is_err(),
            "missing fields are rejected"
        );
    }

    #[test]
    fn mc_provenance_serializes_as_nested_object() {
        let mut r = report("mc");
        r.backend = "monte-carlo".into();
        r.mc = Some(McBackendReport {
            trials: 480_000,
            widths_evaluated: 24,
            ci_lo: 2.6e-9,
            ci_hi: 3.2e-9,
            ci_level: 0.95,
            converged: true,
        });
        let reparsed = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        let mc = reparsed.get("mc").expect("mc object present");
        assert_eq!(mc.get("trials").unwrap().as_f64(), Some(480_000.0));
        assert_eq!(mc.get("converged").unwrap().as_bool(), Some(true));
        assert_eq!(mc.get("ci_hi").unwrap().as_f64(), Some(3.2e-9));
    }

    #[test]
    fn fault_provenance_round_trips() {
        let mut r = report("fault");
        r.fault = Some(FaultReport {
            purity: 0.999_999,
            mode: "short".into(),
            p_short: 3.1e-5,
            scheme: "repairable-tile".into(),
            area_overhead: 1.125,
            p_budget: 6.3e-5,
            recovered_yield: 0.93,
            shortfall: 0.0,
            method: "exact".into(),
            met_target: true,
        });
        let reparsed = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        let fault = reparsed.get("fault").expect("fault object present");
        assert_eq!(
            fault.get("scheme").unwrap().as_str(),
            Some("repairable-tile")
        );
        assert_eq!(fault.get("met_target").unwrap().as_bool(), Some(true));
        assert_eq!(ScenarioReport::from_json(&reparsed).unwrap(), r);
        // Absent on fault-free reports.
        assert!(report("plain").to_json().get("fault").is_none());
    }

    #[test]
    fn artifacts_land_on_disk() {
        let dir = std::env::temp_dir().join(format!("cnfet-report-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_reports(&dir, &[report("x/y=1"), report("x/y=2")]).unwrap();
        assert_eq!(written.len(), 3);
        for path in &written {
            let body = std::fs::read_to_string(path).unwrap();
            assert!(
                Json::parse(&body).is_ok(),
                "{} must be valid",
                path.display()
            );
        }
        assert!(dir.join("x-y-1.json").is_file());
        assert!(dir.join("sweep-summary.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
