//! Structured scenario results and artifact emission.

use crate::json::Json;
use crate::Result;
use std::path::{Path, PathBuf};

/// Provenance of a Monte-Carlo-backend evaluation: how much simulation a
/// scenario consumed and how tight the estimate at `W_min` is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McBackendReport {
    /// Total trials across every width the solve touched.
    pub trials: u64,
    /// Distinct widths evaluated stochastically.
    pub widths_evaluated: u64,
    /// Confidence-interval lower bound of `pF(W_min)`.
    pub ci_lo: f64,
    /// Confidence-interval upper bound of `pF(W_min)`.
    pub ci_hi: f64,
    /// Confidence level of the bounds.
    pub ci_level: f64,
    /// Whether every width met the precision target before `max_trials`.
    pub converged: bool,
}

impl McBackendReport {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("trials".into(), Json::Num(self.trials as f64)),
            (
                "widths_evaluated".into(),
                Json::Num(self.widths_evaluated as f64),
            ),
            ("ci_lo".into(), Json::Num(self.ci_lo)),
            ("ci_hi".into(), Json::Num(self.ci_hi)),
            ("ci_level".into(), Json::Num(self.ci_level)),
            ("converged".into(), Json::Bool(self.converged)),
        ])
    }
}

/// The evaluated outcome of one [`crate::spec::ScenarioSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub name: String,
    /// The seed the sweep assigned (drives the optional MC cross-check).
    pub seed: u64,
    /// Library name.
    pub library: String,
    /// Technology node (nm).
    pub node_nm: f64,
    /// Processing-corner label.
    pub corner: String,
    /// Correlation-scenario name.
    pub correlation: String,
    /// Count back-end name.
    pub backend: String,
    /// Yield target.
    pub yield_target: f64,
    /// Chip transistor count `M`.
    pub m_transistors: f64,
    /// Minimum-sized device count `M_min` (fixed or self-consistent).
    pub m_min: f64,
    /// Row size `M_Rmin` of the Eq. (3.2) model.
    pub m_r_min: f64,
    /// Requirement relaxation applied (1 = uncorrelated).
    pub relaxation: f64,
    /// The device-level requirement `pF_req`.
    pub p_req: f64,
    /// The solved upsizing threshold (nm).
    pub w_min_nm: f64,
    /// Achieved `pF(W_min)`.
    pub p_at_w_min: f64,
    /// Gate-capacitance upsizing penalty.
    pub upsizing_penalty: f64,
    /// Conditional-MC estimate of the non-aligned row failure probability
    /// (when the spec requested trials).
    pub unaligned_p_rf_mc: Option<f64>,
    /// Cumulative exact evaluations on the shared curve after this
    /// scenario (provenance for the memoization win).
    pub curve_evaluations: u64,
    /// Monte-Carlo-backend provenance: trials used and the CI of
    /// `pF(W_min)` (present iff the scenario ran the `monte-carlo`
    /// back-end).
    pub mc: Option<McBackendReport>,
}

impl ScenarioReport {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("library".into(), Json::Str(self.library.clone())),
            ("node_nm".into(), Json::Num(self.node_nm)),
            ("corner".into(), Json::Str(self.corner.clone())),
            ("correlation".into(), Json::Str(self.correlation.clone())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("yield_target".into(), Json::Num(self.yield_target)),
            ("m_transistors".into(), Json::Num(self.m_transistors)),
            ("m_min".into(), Json::Num(self.m_min)),
            ("m_r_min".into(), Json::Num(self.m_r_min)),
            ("relaxation".into(), Json::Num(self.relaxation)),
            ("p_req".into(), Json::Num(self.p_req)),
            ("w_min_nm".into(), Json::Num(self.w_min_nm)),
            ("p_at_w_min".into(), Json::Num(self.p_at_w_min)),
            ("upsizing_penalty".into(), Json::Num(self.upsizing_penalty)),
            (
                "curve_evaluations".into(),
                Json::Num(self.curve_evaluations as f64),
            ),
        ];
        if let Some(p) = self.unaligned_p_rf_mc {
            fields.push(("unaligned_p_rf_mc".into(), Json::Num(p)));
        }
        if let Some(mc) = self.mc {
            fields.push(("mc".into(), mc.to_json()));
        }
        Json::Obj(fields)
    }
}

/// Sanitize a scenario name into a filesystem-safe artifact stem.
fn artifact_stem(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if out.is_empty() {
        out.push_str("scenario");
    }
    out
}

/// Write one JSON artifact per report plus a combined
/// `sweep-summary.json`, returning the paths written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_reports(dir: &Path, reports: &[ScenarioReport]) -> Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::with_capacity(reports.len() + 1);
    for report in reports {
        let path = dir.join(format!("{}.json", artifact_stem(&report.name)));
        std::fs::write(&path, report.to_json().to_string_pretty())?;
        written.push(path);
    }
    let summary = Json::Arr(reports.iter().map(ScenarioReport::to_json).collect());
    let path = dir.join("sweep-summary.json");
    std::fs::write(&path, summary.to_string_pretty())?;
    written.push(path);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str) -> ScenarioReport {
        ScenarioReport {
            name: name.into(),
            seed: 7,
            library: "nangate45".into(),
            node_nm: 45.0,
            corner: "pm=33%, pRs=30%".into(),
            correlation: "none".into(),
            backend: "convolution".into(),
            yield_target: 0.9,
            m_transistors: 1e8,
            m_min: 33e6,
            m_r_min: 360.0,
            relaxation: 1.0,
            p_req: 3e-9,
            w_min_nm: 155.0,
            p_at_w_min: 2.9e-9,
            upsizing_penalty: 0.11,
            unaligned_p_rf_mc: None,
            curve_evaluations: 42,
            mc: None,
        }
    }

    #[test]
    fn report_serializes_and_reparses() {
        let r = report("a/b c");
        let json = r.to_json();
        let reparsed = Json::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed.get("w_min_nm").unwrap().as_f64(), Some(155.0));
        assert_eq!(reparsed.get("name").unwrap().as_str(), Some("a/b c"));
        assert!(reparsed.get("unaligned_p_rf_mc").is_none());
        assert!(reparsed.get("mc").is_none());
    }

    #[test]
    fn mc_provenance_serializes_as_nested_object() {
        let mut r = report("mc");
        r.backend = "monte-carlo".into();
        r.mc = Some(McBackendReport {
            trials: 480_000,
            widths_evaluated: 24,
            ci_lo: 2.6e-9,
            ci_hi: 3.2e-9,
            ci_level: 0.95,
            converged: true,
        });
        let reparsed = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        let mc = reparsed.get("mc").expect("mc object present");
        assert_eq!(mc.get("trials").unwrap().as_f64(), Some(480_000.0));
        assert_eq!(mc.get("converged").unwrap().as_bool(), Some(true));
        assert_eq!(mc.get("ci_hi").unwrap().as_f64(), Some(3.2e-9));
    }

    #[test]
    fn artifacts_land_on_disk() {
        let dir = std::env::temp_dir().join(format!("cnfet-report-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_reports(&dir, &[report("x/y=1"), report("x/y=2")]).unwrap();
        assert_eq!(written.len(), 3);
        for path in &written {
            let body = std::fs::read_to_string(path).unwrap();
            assert!(
                Json::parse(&body).is_ok(),
                "{} must be valid",
                path.display()
            );
        }
        assert!(dir.join("x-y-1.json").is_file());
        assert!(dir.join("sweep-summary.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
