//! Wafer-scale random-field workloads: [`WaferSpec`], the streaming
//! [`WaferEngine`], and the aggregated [`WaferReport`].
//!
//! A wafer run answers the paper's yield question at manufacturing scale:
//! *if every die on a wafer sees its own realization of the stochastic
//! process knobs — growth density, CNT correlation length, minimum-device
//! fraction — what does the wafer's yield distribution look like?*
//!
//! The model: the **base scenario** is solved once at its central knob
//! values, fixing the design width `W_design` (you tape out one design,
//! not one per die). Each die then realizes its knobs from the per-knob
//! [`cnt_stats::FieldSpec`] random fields — a local distribution × radial
//! trend × spatially correlated noise — and the die's yield is the chip
//! yield that design achieves under the die's process conditions:
//! `(1 − pF(W_design)/relaxation_die)^{M_min,die}` (Eq. 2.5 with the
//! Sec 3.1 relaxation evaluated at the die's realized row model).
//!
//! **Determinism contract**: the report is a pure function of
//! `(spec, seed)`. Die realizations derive from
//! `split_seed(split_seed(seed, KNOB_SALT), knob_index)` per knob and the
//! die's full-grid index, never from evaluation order; dies are
//! aggregated in fixed 1024-die chunks whose partial sums are merged in
//! chunk order, so the serialized [`WaferReport`] is **byte-identical for
//! any worker count**.
//!
//! Realized knob values are clamped to their physical domain and snapped
//! onto the relative quantization grid of [`crate::knob::snap`]; the
//! engine memoizes die outcomes per distinct quantized knob tuple, so a
//! 100 k-die wafer typically evaluates only a few thousand distinct
//! scenarios through the shared curve/design caches.

use crate::builder::unknown_key;
use crate::engine::Pipeline;
use crate::json::Json;
use crate::knob::{self, field_from_json, field_to_json};
use crate::report::artifact_stem;
use crate::spec::{MminSpec, RhoSpec, ScenarioSpec};
use crate::{PipelineError, Result};
use cnfet_core::chipyield::yield_min_dominated;
use cnfet_core::failure::FailureModel;
use cnfet_core::paper;
use cnfet_core::rowmodel::RowModel;
use cnfet_fault::{short_probability, McFallback, PurityMode, RedundancyScheme};
use cnfet_sim::adaptive::McPrecision;
use cnt_stats::seed::split_seed;
use cnt_stats::{DistSpec, FastMap, FastSet, FieldSampler, FieldSpec};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn invalid(field: &'static str, msg: impl Into<String>) -> PipelineError {
    PipelineError::InvalidSpec {
        field,
        msg: msg.into(),
    }
}

/// Yield-binning histogram resolution (bins over `[0, 1]`).
const YIELD_BINS: usize = 10;
/// Radial-profile resolution (equal-width normalized-radius bands).
const RADIAL_BANDS: usize = 8;
/// Dies per aggregation chunk — the fixed merge granularity that makes
/// the report worker-count independent.
const CHUNK_DIES: usize = 1024;
/// Largest accepted wafer diameter in dies (≈ 13 M dies).
const MAX_DIAMETER_DIES: u32 = 4096;
/// Shards of the quantized-scenario memo. A multi-million-die wafer with
/// many workers hits the memo once per die; sharding by key keeps that
/// from serializing on a single lock. Purely a contention knob — the memo
/// is a value cache for a pure function, so shard count and lock timing
/// cannot change any result.
const MEMO_SHARDS: usize = 16;

/// One shard of the scenario memo: quantized knob tuple → die yield.
type MemoShard = Mutex<FastMap<(u64, u64, u64, u64), f64>>;

/// Pick the memo shard for a quantized knob tuple (multiply–rotate mix of
/// the four bit patterns, same family as `cnt_stats::fasthash`).
fn memo_shard(key: (u64, u64, u64, u64)) -> usize {
    const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = key.0;
    h = (h ^ key.1).wrapping_mul(PHI64).rotate_left(26);
    h = (h ^ key.2).wrapping_mul(PHI64).rotate_left(26);
    h = (h ^ key.3).wrapping_mul(PHI64).rotate_left(26);
    h ^= h >> 32;
    (h.wrapping_mul(PHI64) >> 60) as usize % MEMO_SHARDS
}

/// Seed salt deriving the redundancy-compose Monte-Carlo fallback stream
/// for wafer die evaluations, disjoint from the knob realization streams.
const WAFER_FAULT_SALT: u64 = 0x7746_6C74; // "wflt"

/// Top-level keys of a wafer spec document.
pub const WAFER_KEYS: [&str; 5] = ["name", "seed", "diameter_dies", "base", "fields"];

/// A declarative wafer-scale workload: die-grid geometry, the base
/// scenario the design is solved on, and one random field per stochastic
/// knob.
///
/// The JSON document form:
///
/// ```text
/// {
///   "name": "wafer-demo",
///   "diameter_dies": 360,            // dies across the wafer diameter
///   "seed": 7,                        // optional: pins the realization
///   "base": { "correlation": "growth+aligned-layout", … },
///   "fields": {                       // per-knob random fields
///     "density": { "dist": { "gaussian": { "mean": 1, "sd": 0.08 } },
///                  "trend": -0.1, "noise_sd": 0.05,
///                  "correlation_dies": 24 },
///     "l_cnt_um": { "uniform": { "lo": 150, "hi": 250 } }
///   }
/// }
/// ```
///
/// Every [`crate::knob::STOCHASTIC_KNOBS`] entry may carry a field; knobs
/// without one fall back to the base scenario's own (possibly
/// distributional) knob as a trivial field with no trend or correlated
/// noise.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferSpec {
    /// Workload name (also names the `<name>.wafer.json` artifact).
    pub name: String,
    /// Dies across the wafer diameter; dies whose grid-cell centers fall
    /// inside the inscribed circle exist (`≈ π/4 · D²` dies).
    pub diameter_dies: u32,
    /// Optional pinned seed; when absent the caller's seed (e.g. the
    /// envelope seed) drives the realization.
    pub seed: Option<u64>,
    /// The scenario the design is solved on and every die derives from.
    pub base: ScenarioSpec,
    /// Per-knob random fields, indexed like
    /// [`crate::knob::STOCHASTIC_KNOBS`] (density, l_cnt_um, m_min,
    /// purity).
    pub fields: [Option<FieldSpec>; 4],
}

impl WaferSpec {
    /// A wafer over the given base with no field overrides.
    pub fn new(name: impl Into<String>, diameter_dies: u32, base: ScenarioSpec) -> Self {
        Self {
            name: name.into(),
            diameter_dies,
            seed: None,
            base,
            fields: [None, None, None, None],
        }
    }

    /// Parse a wafer document.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Parse`] for malformed JSON, otherwise as
    /// [`WaferSpec::from_json`].
    pub fn parse(src: &str) -> Result<Self> {
        Self::from_json(&Json::parse(src)?)
    }

    /// Build from a parsed document (the form the `wafer` envelope body
    /// carries).
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownKey`] for unknown sections, knobs, or
    /// distribution kinds (with nearest-candidate suggestions),
    /// [`PipelineError::InvalidSpec`] for bad values.
    pub fn from_json(doc: &Json) -> Result<Self> {
        for (key, _) in doc
            .as_object()
            .ok_or_else(|| invalid("wafer", "document must be an object"))?
        {
            if !WAFER_KEYS.contains(&key.as_str()) {
                return Err(unknown_key("wafer", key, &WAFER_KEYS));
            }
        }
        let name = match doc.get("name") {
            None => "wafer".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| invalid("name", "must be a string"))?
                .to_string(),
        };
        let diameter_dies = doc
            .get("diameter_dies")
            .ok_or_else(|| invalid("diameter_dies", "a wafer spec needs `diameter_dies`"))?
            .as_u64()
            .filter(|d| (1..=u64::from(MAX_DIAMETER_DIES)).contains(d))
            .ok_or_else(|| {
                invalid(
                    "diameter_dies",
                    format!("must be an integer in [1, {MAX_DIAMETER_DIES}]"),
                )
            })? as u32;
        let seed = match doc.get("seed") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| invalid("seed", "must be a non-negative integer"))?,
            ),
        };
        // The base scenario keeps its own name (it round-trips through
        // `ScenarioSpec::to_json`); it defaults to the wafer's name only
        // when the document does not set one.
        let mut builder = crate::builder::ScenarioBuilder::new(name.clone());
        if let Some(base) = doc.get("base") {
            let fields = base
                .as_object()
                .ok_or_else(|| invalid("base", "must be an object"))?;
            for (key, value) in fields {
                builder = builder.set_json(key, value)?;
            }
        }
        let base = builder.build()?;

        let mut fields: [Option<FieldSpec>; 4] = [None, None, None, None];
        if let Some(v) = doc.get("fields") {
            let entries = v
                .as_object()
                .ok_or_else(|| invalid("fields", "must be an object"))?;
            for (key, value) in entries {
                let knob = knob::STOCHASTIC_KNOBS
                    .iter()
                    .position(|k| k == key)
                    .ok_or_else(|| unknown_key("fields", key, &knob::STOCHASTIC_KNOBS))?;
                // The three knobs share one static context label each so
                // diagnostics can say which knob's field failed.
                let context = knob::STOCHASTIC_KNOBS[knob];
                fields[knob] = Some(field_from_json(context, value)?);
            }
        }

        let spec = Self {
            name,
            diameter_dies,
            seed,
            base,
            fields,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Serialize the full spec; `WaferSpec::from_json` inverts this
    /// exactly (the normal form).
    pub fn to_json(&self) -> Json {
        let mut doc = vec![("name".to_string(), Json::Str(self.name.clone()))];
        if let Some(seed) = self.seed {
            doc.push(("seed".to_string(), Json::from_u64(seed)));
        }
        doc.push((
            "diameter_dies".to_string(),
            Json::from_u64(u64::from(self.diameter_dies)),
        ));
        doc.push(("base".to_string(), self.base.to_json()));
        let fields: Vec<(String, Json)> = self
            .fields
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                f.as_ref()
                    .map(|f| (knob::STOCHASTIC_KNOBS[i].to_string(), field_to_json(f)))
            })
            .collect();
        if !fields.is_empty() {
            doc.push(("fields".to_string(), Json::Obj(fields)));
        }
        Json::Obj(doc)
    }

    /// Validate geometry, the base scenario, and every field.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] naming the offending part.
    pub fn validate(&self) -> Result<()> {
        if !(1..=MAX_DIAMETER_DIES).contains(&self.diameter_dies) {
            return Err(invalid(
                "diameter_dies",
                format!("must be in [1, {MAX_DIAMETER_DIES}]"),
            ));
        }
        self.base.validate()?;
        for (i, field) in self.fields.iter().enumerate() {
            if let Some(f) = field {
                f.validate().map_err(|e| {
                    invalid("fields", format!("{}: {e}", knob::STOCHASTIC_KNOBS[i]))
                })?;
            }
        }
        if self.fields[2].is_some() && matches!(self.base.m_min, MminSpec::SelfConsistent) {
            return Err(invalid(
                "fields",
                "an `m_min` field needs a fractional base `m_min`, not \"self-consistent\"",
            ));
        }
        if self.fields[3].is_some() && self.base.purity.mode == PurityMode::Removal {
            return Err(invalid(
                "fields",
                "a `purity` field needs the \"short\" purity mode — removal-mode \
                 purity reshapes the failure curve, which is solved once per \
                 wafer, not per die",
            ));
        }
        Ok(())
    }

    /// The effective random field of one knob: the explicit field if set,
    /// otherwise the base scenario's knob as a trivial field. `None` for
    /// `m_min` under the self-consistent treatment and for removal-mode
    /// `purity` (both have no per-die variation).
    fn effective_field(&self, knob: usize) -> Option<FieldSpec> {
        if let Some(f) = &self.fields[knob] {
            return Some(*f);
        }
        let dist = match knob {
            0 => self.base.density,
            1 => self.base.l_cnt_um,
            2 => match self.base.m_min {
                MminSpec::Fraction(d) => d,
                MminSpec::SelfConsistent => return None,
            },
            3 => match self.base.purity.mode {
                PurityMode::Short => self.base.purity.dist,
                PurityMode::Removal => return None,
            },
            _ => unreachable!("no such knob"),
        };
        Some(FieldSpec::from_dist(dist))
    }

    /// The base scenario with every stochastic knob collapsed to its
    /// central (mean) value — the deterministic design point the wafer's
    /// `W_design` is solved at.
    fn central_base(&self) -> Result<ScenarioSpec> {
        let central = |d: &DistSpec, field: &'static str| -> Result<DistSpec> {
            Ok(DistSpec::Fixed(
                d.mean().map_err(|e| invalid(field, e.to_string()))?,
            ))
        };
        let mut base = self.base.clone();
        base.density = central(&base.density, "density")?;
        base.l_cnt_um = central(&base.l_cnt_um, "l_cnt_um")?;
        if let MminSpec::Fraction(d) = base.m_min {
            base.m_min = MminSpec::Fraction(central(&d, "m_min")?);
        }
        base.purity.dist = central(&base.purity.dist, "purity")?;
        Ok(base)
    }

    /// Number of dies on the wafer (grid cells whose centers fall inside
    /// the inscribed circle).
    pub fn die_count(&self) -> u64 {
        die_positions(self.diameter_dies).len() as u64
    }
}

/// One die's geometry: full-grid index (the seeding key) and position.
#[derive(Debug, Clone, Copy)]
struct Die {
    /// Row-major index in the full `D × D` grid — stable under geometry,
    /// which keeps per-die draws independent of how many dies exist.
    grid_index: u64,
    /// Grid-cell center, in die pitches from the wafer center.
    x: f64,
    y: f64,
    /// Normalized radius in `[0, 1]`.
    r: f64,
}

/// Enumerate the dies of a `D`-die-diameter wafer in row-major order.
fn die_positions(diameter_dies: u32) -> Vec<Die> {
    let d = diameter_dies as f64;
    let radius = d / 2.0;
    let mut dies = Vec::new();
    for j in 0..diameter_dies {
        for i in 0..diameter_dies {
            let x = (f64::from(i) + 0.5) - radius;
            let y = (f64::from(j) + 0.5) - radius;
            let rr = (x * x + y * y).sqrt();
            if rr <= radius {
                dies.push(Die {
                    grid_index: u64::from(j) * u64::from(diameter_dies) + u64::from(i),
                    x,
                    y,
                    r: if radius > 0.0 {
                        (rr / radius).min(1.0)
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    dies
}

/// One radial band of the wafer yield profile.
#[derive(Debug, Clone, PartialEq)]
pub struct RadialBand {
    /// Inclusive lower normalized radius of the band.
    pub r_lo: f64,
    /// Exclusive upper normalized radius (the last band includes 1).
    pub r_hi: f64,
    /// Dies in the band.
    pub dies: u64,
    /// Mean die yield over the band (0 when empty).
    pub mean_yield: f64,
}

/// The aggregated result of one wafer run — a pure function of
/// `(spec, seed)`, byte-identical for any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferReport {
    /// The workload name.
    pub name: String,
    /// The seed the realization derived from.
    pub seed: u64,
    /// Wafer diameter in dies.
    pub diameter_dies: u32,
    /// Dies evaluated.
    pub dies: u64,
    /// The design width solved on the central base scenario (nm).
    pub w_design_nm: f64,
    /// Mean die yield across the wafer.
    pub overall_yield: f64,
    /// Worst die yield.
    pub min_die_yield: f64,
    /// Best die yield.
    pub max_die_yield: f64,
    /// Distinct quantized knob tuples evaluated (the memo's key count —
    /// how much the quantization grid collapsed the wafer).
    pub distinct_scenarios: u64,
    /// Die counts of the ten equal-width yield bins over `[0, 1]`.
    pub bins: Vec<u64>,
    /// Center-to-edge yield profile over eight equal-width radius bands.
    pub radial: Vec<RadialBand>,
}

impl WaferReport {
    /// Serialize to the wire/artifact form (stable key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("seed".into(), Json::from_u64(self.seed)),
            (
                "diameter_dies".into(),
                Json::from_u64(u64::from(self.diameter_dies)),
            ),
            ("dies".into(), Json::from_u64(self.dies)),
            ("w_design_nm".into(), Json::Num(self.w_design_nm)),
            ("overall_yield".into(), Json::Num(self.overall_yield)),
            ("min_die_yield".into(), Json::Num(self.min_die_yield)),
            ("max_die_yield".into(), Json::Num(self.max_die_yield)),
            (
                "distinct_scenarios".into(),
                Json::from_u64(self.distinct_scenarios),
            ),
            (
                "bins".into(),
                Json::Arr(self.bins.iter().map(|&b| Json::from_u64(b)).collect()),
            ),
            (
                "radial".into(),
                Json::Arr(
                    self.radial
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("r_lo".into(), Json::Num(b.r_lo)),
                                ("r_hi".into(), Json::Num(b.r_hi)),
                                ("dies".into(), Json::from_u64(b.dies)),
                                ("mean_yield".into(), Json::Num(b.mean_yield)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a serialized report.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] for missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self> {
        let bad = |msg: String| invalid("wafer_report", msg);
        let num = |key: &str| -> Result<f64> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(format!("missing or non-numeric `{key}`")))
        };
        let int = |key: &str| -> Result<u64> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("missing or non-integer `{key}`")))
        };
        let bins = v
            .get("bins")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing `bins`".into()))?
            .iter()
            .map(|b| b.as_u64().ok_or_else(|| bad("non-integer bin".into())))
            .collect::<Result<Vec<u64>>>()?;
        let radial = v
            .get("radial")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing `radial`".into()))?
            .iter()
            .map(|band| {
                Ok(RadialBand {
                    r_lo: band
                        .get("r_lo")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("band missing `r_lo`".into()))?,
                    r_hi: band
                        .get("r_hi")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("band missing `r_hi`".into()))?,
                    dies: band
                        .get("dies")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("band missing `dies`".into()))?,
                    mean_yield: band
                        .get("mean_yield")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("band missing `mean_yield`".into()))?,
                })
            })
            .collect::<Result<Vec<RadialBand>>>()?;
        Ok(Self {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing `name`".into()))?
                .to_string(),
            seed: int("seed")?,
            diameter_dies: int("diameter_dies")? as u32,
            dies: int("dies")?,
            w_design_nm: num("w_design_nm")?,
            overall_yield: num("overall_yield")?,
            min_die_yield: num("min_die_yield")?,
            max_die_yield: num("max_die_yield")?,
            distinct_scenarios: int("distinct_scenarios")?,
            bins,
            radial,
        })
    }
}

/// Write a wafer artifact as `<name>.wafer.json`, returning the path.
/// Pretty-printed with stable key order, so identical reports are
/// byte-identical on disk.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_wafer_report(dir: &Path, report: &WaferReport) -> Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.wafer.json", artifact_stem(&report.name)));
    std::fs::write(&path, report.to_json().to_string_pretty())?;
    Ok(path)
}

/// Per-chunk partial aggregate. Chunks cover fixed die ranges, so merging
/// these in chunk order reproduces the sequential aggregation exactly.
struct ChunkAgg {
    sum_yield: f64,
    min_yield: f64,
    max_yield: f64,
    bins: [u64; YIELD_BINS],
    band_dies: [u64; RADIAL_BANDS],
    band_sum: [f64; RADIAL_BANDS],
    distinct: FastSet<(u64, u64, u64, u64)>,
}

impl ChunkAgg {
    fn new() -> Self {
        Self {
            sum_yield: 0.0,
            min_yield: f64::INFINITY,
            max_yield: f64::NEG_INFINITY,
            bins: [0; YIELD_BINS],
            band_dies: [0; RADIAL_BANDS],
            band_sum: [0.0; RADIAL_BANDS],
            distinct: FastSet::default(),
        }
    }

    fn add(&mut self, y: f64, r: f64, key: (u64, u64, u64, u64)) {
        self.sum_yield += y;
        self.min_yield = self.min_yield.min(y);
        self.max_yield = self.max_yield.max(y);
        let bin = ((y * YIELD_BINS as f64) as usize).min(YIELD_BINS - 1);
        self.bins[bin] += 1;
        let band = ((r * RADIAL_BANDS as f64) as usize).min(RADIAL_BANDS - 1);
        self.band_dies[band] += 1;
        self.band_sum[band] += y;
        self.distinct.insert(key);
    }

    fn merge(&mut self, other: &ChunkAgg) {
        self.sum_yield += other.sum_yield;
        self.min_yield = self.min_yield.min(other.min_yield);
        self.max_yield = self.max_yield.max(other.max_yield);
        for i in 0..YIELD_BINS {
            self.bins[i] += other.bins[i];
        }
        for i in 0..RADIAL_BANDS {
            self.band_dies[i] += other.band_dies[i];
            self.band_sum[i] += other.band_sum[i];
        }
        self.distinct.extend(other.distinct.iter().copied());
    }
}

/// The per-run constants every die evaluation shares.
struct DieModel {
    p_at_w: f64,
    rho_scaled: f64,
    grid_division: f64,
    m_transistors: f64,
    base_m_min: f64,
    fault: Option<WaferFault>,
}

/// Per-run fault constants (present when the base scenario has purity or
/// redundancy active). `short_n_bar` is the mean CNT count under a
/// `W_design`-wide gate — the per-die metallic-short hook; `None` in
/// removal mode, where purity already reshaped the central solve's
/// failure curve and has no additional per-die effect.
struct WaferFault {
    short_n_bar: Option<f64>,
    redundancy: RedundancyScheme,
    mc: McFallback,
}

/// The streaming wafer evaluator over a shared [`Pipeline`].
///
/// Workers claim fixed 1024-die chunks from an atomic cursor, realize
/// each die's knobs through the per-knob [`FieldSampler`]s, and look the
/// quantized knob tuple up in a shared memo before computing. Chunk
/// aggregates merge in chunk order, so any worker count streams to the
/// same report.
pub struct WaferEngine<'a> {
    pipeline: &'a Pipeline,
}

impl<'a> WaferEngine<'a> {
    /// An engine over the given pipeline (shares its caches).
    pub fn new(pipeline: &'a Pipeline) -> Self {
        Self { pipeline }
    }

    /// Evaluate one die from its realized knob values.
    fn die_yield(
        model: &DieModel,
        spec: &ScenarioSpec,
        knobs: (f64, f64, f64, f64),
    ) -> Result<f64> {
        let (density, l_cnt, m_min_frac, purity) = knobs;
        let row = RowModel::from_design(l_cnt, model.rho_scaled * density)?
            .with_grid_division(model.grid_division)?;
        let relaxation = Pipeline::relaxation(spec, &row);
        let m_min = if m_min_frac > 0.0 {
            (m_min_frac * model.m_transistors).max(1.0)
        } else {
            model.base_m_min
        };
        let p_eff = (model.p_at_w / relaxation.max(1.0)).min(0.999_999);
        let Some(fault) = &model.fault else {
            return Ok(yield_min_dominated(p_eff, m_min));
        };
        // Fault-aware die: the per-die purity shorts a fraction of the
        // cells on top of the correlation-credited open failure, then the
        // redundancy scheme recovers what it can.
        let p_short = match fault.short_n_bar {
            Some(n_bar) if purity < 1.0 => {
                short_probability(purity, n_bar).map_err(|e| invalid("fault", e.to_string()))?
            }
            _ => 0.0,
        };
        let p_cell = (p_short + p_eff).clamp(0.0, 1.0);
        let outcome = fault
            .redundancy
            .compose(p_cell, m_min, &fault.mc)
            .map_err(|e| invalid("fault", e.to_string()))?;
        Ok(outcome.circuit_yield)
    }

    /// Run the wafer workload: solve the central base scenario for
    /// `W_design`, then stream every die through the field realizations.
    ///
    /// `seed` drives the realization unless the spec pins its own;
    /// `workers` is purely a wall-clock knob (the report is byte-identical
    /// for any value).
    ///
    /// # Errors
    ///
    /// Propagates validation, model, and solver errors.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or a worker thread panics.
    pub fn run(&self, spec: &WaferSpec, seed: u64, workers: usize) -> Result<WaferReport> {
        assert!(workers > 0, "wafer engine requires at least one worker");
        spec.validate()?;
        let seed = spec.seed.unwrap_or(seed);

        // One design for the whole wafer: solve the central base.
        let central = spec.central_base()?;
        let base_report = self.pipeline.evaluate(&central, seed)?;
        let w_design = base_report.w_min_nm;

        // Per-run constants. `p_at_w_min` is pF(W_design) under the base
        // corner/backend — the per-die variation enters through the row
        // relaxation and M_min, not the failure curve.
        let base_node = central.library.node_nm();
        let rho_base = match central.rho {
            RhoSpec::Paper => paper::RHO_MIN_FET_PER_UM,
            RhoSpec::Measured => {
                self.pipeline
                    .design_stats(central.library, central.fast_design)?
                    .rho_per_um
            }
        };
        // Fault constants: the short hook needs the mean CNT count at
        // W_design under the *spec* corner (removal mode folds purity
        // into the corner inside `evaluate` and leaves no per-die term).
        let fault = if central.fault_active() {
            let short_n_bar = match central.purity.mode {
                PurityMode::Short => {
                    let fm = FailureModel::paper_default(central.corner.corner()?)?;
                    Some(fm.mean_count(w_design)?)
                }
                PurityMode::Removal => None,
            };
            Some(WaferFault {
                short_n_bar,
                redundancy: central.redundancy,
                mc: McFallback {
                    seed: split_seed(seed, WAFER_FAULT_SALT),
                    workers: 1,
                    precision: McPrecision::default(),
                },
            })
        } else {
            None
        };
        let model = DieModel {
            p_at_w: base_report.p_at_w_min,
            rho_scaled: rho_base * base_node / central.node_nm,
            grid_division: central.grid.benefit_division(),
            m_transistors: central.m_transistors,
            base_m_min: base_report.m_min,
            fault,
        };

        // Seed one sampler per knob; die draws key off the full-grid die
        // index inside the sampler, so they are position-stable.
        let knob_base = split_seed(seed, knob::KNOB_SALT);
        let mut samplers: [Option<FieldSampler>; 4] = [None, None, None, None];
        for (i, sampler) in samplers.iter_mut().enumerate() {
            if let Some(field) = spec.effective_field(i) {
                *sampler = Some(
                    field
                        .sampler(split_seed(knob_base, i as u64))
                        .map_err(|e| invalid("fields", e.to_string()))?,
                );
            }
        }
        let central_knob = |knob: usize| -> f64 {
            match knob {
                0 => central.density.as_fixed().unwrap_or(1.0),
                1 => central.l_cnt_um.as_fixed().unwrap_or(paper::L_CNT_UM),
                // 0 signals "use the base solution's M_min" downstream.
                2 => 0.0,
                _ => central.purity.dist.as_fixed().unwrap_or(1.0),
            }
        };

        let dies = die_positions(spec.diameter_dies);
        let chunks = dies.len().div_ceil(CHUNK_DIES).max(1);
        let cursor = AtomicUsize::new(0);
        let memo: [MemoShard; MEMO_SHARDS] =
            std::array::from_fn(|_| Mutex::new(FastMap::default()));
        let results: Mutex<BTreeMap<usize, ChunkAgg>> = Mutex::new(BTreeMap::new());
        let failure: Mutex<Option<PipelineError>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..workers.min(chunks) {
                scope.spawn(|| loop {
                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk >= chunks || failure.lock().expect("wafer lock").is_some() {
                        return;
                    }
                    let lo = chunk * CHUNK_DIES;
                    let hi = (lo + CHUNK_DIES).min(dies.len());
                    let mut agg = ChunkAgg::new();
                    for die in &dies[lo..hi] {
                        let mut knobs = [0.0_f64; 4];
                        for (i, k) in knobs.iter_mut().enumerate() {
                            *k = match &samplers[i] {
                                Some(s) => {
                                    knob::snap(i, s.realize(die.grid_index, die.x, die.y, die.r))
                                }
                                None => central_knob(i),
                            };
                        }
                        let key = (
                            knobs[0].to_bits(),
                            knobs[1].to_bits(),
                            knobs[2].to_bits(),
                            knobs[3].to_bits(),
                        );
                        let shard = &memo[memo_shard(key)];
                        let cached = shard.lock().expect("wafer lock").get(&key).copied();
                        let y = match cached {
                            Some(y) => y,
                            None => {
                                match Self::die_yield(
                                    &model,
                                    &central,
                                    (knobs[0], knobs[1], knobs[2], knobs[3]),
                                ) {
                                    Ok(y) => {
                                        shard.lock().expect("wafer lock").insert(key, y);
                                        y
                                    }
                                    Err(e) => {
                                        *failure.lock().expect("wafer lock") = Some(e);
                                        return;
                                    }
                                }
                            }
                        };
                        agg.add(y, die.r, key);
                    }
                    results.lock().expect("wafer lock").insert(chunk, agg);
                });
            }
        });

        if let Some(e) = failure.into_inner().expect("wafer lock") {
            return Err(e);
        }
        let results = results.into_inner().expect("wafer lock");
        let mut total = ChunkAgg::new();
        // BTreeMap iteration is chunk order — the determinism barrier.
        for agg in results.values() {
            total.merge(agg);
        }

        let n = dies.len() as u64;
        let radial = (0..RADIAL_BANDS)
            .map(|i| RadialBand {
                r_lo: i as f64 / RADIAL_BANDS as f64,
                r_hi: (i + 1) as f64 / RADIAL_BANDS as f64,
                dies: total.band_dies[i],
                mean_yield: if total.band_dies[i] > 0 {
                    total.band_sum[i] / total.band_dies[i] as f64
                } else {
                    0.0
                },
            })
            .collect();
        Ok(WaferReport {
            name: spec.name.clone(),
            seed,
            diameter_dies: spec.diameter_dies,
            dies: n,
            w_design_nm: w_design,
            overall_yield: if n > 0 {
                total.sum_yield / n as f64
            } else {
                0.0
            },
            min_die_yield: if n > 0 { total.min_yield } else { 0.0 },
            max_die_yield: if n > 0 { total.max_yield } else { 0.0 },
            distinct_scenarios: total.distinct.len() as u64,
            bins: total.bins.to_vec(),
            radial,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BackendSpec, CorrelationSpec, PuritySpec};

    fn fast_base() -> ScenarioSpec {
        let mut base = ScenarioSpec::baseline("wafer-test");
        base.backend = BackendSpec::GaussianSum;
        base.fast_design = true;
        base.rho = RhoSpec::Paper;
        base.correlation = CorrelationSpec::GrowthAlignedLayout;
        base
    }

    fn demo_spec(diameter: u32) -> WaferSpec {
        let mut spec = WaferSpec::new("demo", diameter, fast_base());
        spec.fields[0] = Some(FieldSpec {
            dist: DistSpec::Gaussian { mean: 1.0, sd: 0.1 },
            trend: -0.15,
            noise_sd: 0.05,
            correlation_dies: 6.0,
            clamp_lo: 0.2,
            clamp_hi: 3.0,
        });
        spec.fields[1] = Some(FieldSpec::from_dist(DistSpec::Uniform {
            lo: 150.0,
            hi: 250.0,
        }));
        spec
    }

    #[test]
    fn die_grid_fills_the_inscribed_circle() {
        assert_eq!(die_positions(1).len(), 1);
        let d = die_positions(40);
        let area = std::f64::consts::PI / 4.0 * 40.0 * 40.0;
        assert!(
            (d.len() as f64 - area).abs() < 0.05 * area,
            "{} dies vs {area}",
            d.len()
        );
        for die in &d {
            assert!(die.r <= 1.0);
        }
        // Full-grid indices are unique and row-major increasing.
        assert!(d.windows(2).all(|w| w[0].grid_index < w[1].grid_index));
    }

    #[test]
    fn wafer_spec_round_trips() {
        let mut spec = demo_spec(24);
        spec.seed = Some(99);
        let wire = spec.to_json();
        assert_eq!(WaferSpec::from_json(&wire).unwrap(), spec);
        // And the serialized text form round-trips too.
        assert_eq!(WaferSpec::parse(&wire.to_string_pretty()).unwrap(), spec);
    }

    #[test]
    fn wafer_spec_rejects_bad_documents() {
        assert!(WaferSpec::parse(r#"{ "diameter_dies": 0 }"#).is_err());
        assert!(WaferSpec::parse(r#"{ "diamter_dies": 10 }"#)
            .unwrap_err()
            .to_string()
            .contains("did you mean `diameter_dies`"));
        let err = WaferSpec::parse(r#"{ "diameter_dies": 10, "fields": { "densty": 1.0 } }"#)
            .unwrap_err();
        assert!(err.to_string().contains("did you mean `density`"), "{err}");
        assert!(WaferSpec::parse(
            r#"{ "diameter_dies": 10,
                 "base": { "m_min": "self-consistent" },
                 "fields": { "m_min": { "uniform": { "lo": 0.2, "hi": 0.4 } } } }"#,
        )
        .is_err());
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        let spec = demo_spec(28);
        let p = Pipeline::new();
        let engine = WaferEngine::new(&p);
        let one = engine.run(&spec, 7, 1).unwrap();
        let four = engine.run(&spec, 7, 4).unwrap();
        assert_eq!(one, four);
        assert_eq!(
            one.to_json().to_string_pretty(),
            four.to_json().to_string_pretty()
        );
        assert_eq!(one.dies, spec.die_count());
        assert_eq!(one.bins.iter().sum::<u64>(), one.dies);
        assert_eq!(one.radial.iter().map(|b| b.dies).sum::<u64>(), one.dies);
        assert!(one.min_die_yield <= one.overall_yield);
        assert!(one.overall_yield <= one.max_die_yield);
        assert!(one.distinct_scenarios > 1 && one.distinct_scenarios <= one.dies);
        // A different seed realizes a different wafer.
        let other = engine.run(&spec, 8, 2).unwrap();
        assert_ne!(one.overall_yield, other.overall_yield);
    }

    #[test]
    fn quantization_collapses_tight_fields() {
        // Clamped to [0.9, 1.1], the relative 2⁻¹⁰ grid holds ~300
        // representable points — far fewer than the wafer's dies — so the
        // memo must collapse the workload by pigeonhole.
        let mut spec = WaferSpec::new("tight", 28, fast_base());
        spec.fields[0] = Some(FieldSpec {
            dist: DistSpec::Gaussian {
                mean: 1.0,
                sd: 0.08,
            },
            trend: 0.0,
            noise_sd: 0.0,
            correlation_dies: 8.0,
            clamp_lo: 0.9,
            clamp_hi: 1.1,
        });
        let p = Pipeline::new();
        let report = WaferEngine::new(&p).run(&spec, 11, 2).unwrap();
        assert!(
            report.distinct_scenarios < report.dies / 2,
            "{} distinct of {} dies",
            report.distinct_scenarios,
            report.dies
        );
    }

    #[test]
    fn deterministic_base_wafer_is_uniform() {
        // No fields, all-fixed base: every die is the same scenario.
        let spec = WaferSpec::new("flat", 16, fast_base());
        let p = Pipeline::new();
        let report = WaferEngine::new(&p).run(&spec, 3, 2).unwrap();
        assert_eq!(report.distinct_scenarios, 1);
        assert!((report.min_die_yield - report.max_die_yield).abs() < 1e-15);
        // At W_design the base scenario meets its yield target.
        assert!(
            (report.overall_yield - spec.base.yield_target).abs() < 0.01,
            "yield {} vs target {}",
            report.overall_yield,
            spec.base.yield_target
        );
    }

    #[test]
    fn purity_field_drives_redundancy_recovered_die_yield() {
        // A per-die s-CNT purity field (short mode) must move die yield
        // through the redundancy compose path, deterministically for any
        // worker count. The field spans four decades of impurity, so the
        // wafer holds both near-clean dies that meet the target under TMR
        // and dirty dies that miss it outright.
        let mut spec = WaferSpec::new("fault", 20, fast_base());
        spec.base.purity = PuritySpec {
            dist: DistSpec::Fixed(1.0 - 1e-7),
            mode: PurityMode::Short,
        };
        spec.base.redundancy = RedundancyScheme::Tmr;
        spec.fields[3] = Some(FieldSpec::from_dist(DistSpec::Uniform {
            lo: 0.99999,
            hi: 0.999999999,
        }));
        assert!(spec.validate().is_ok());
        let p = Pipeline::new();
        let engine = WaferEngine::new(&p);
        let one = engine.run(&spec, 7, 1).unwrap();
        let four = engine.run(&spec, 7, 4).unwrap();
        assert_eq!(one, four);
        assert!(
            one.max_die_yield - one.min_die_yield > 0.1,
            "purity spread must separate die yields: min {} max {}",
            one.min_die_yield,
            one.max_die_yield
        );

        // Removal-mode purity reshapes the failure curve, which is solved
        // once per wafer — a per-die purity field must be rejected.
        spec.base.purity.mode = PurityMode::Removal;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn radial_trend_shows_in_the_profile() {
        // Strong negative density trend lowers ρ at the edge, which
        // *raises* the relaxation and with it edge yield — the profile
        // must be monotone in the trend's direction, not flat.
        let mut spec = WaferSpec::new("trend", 32, fast_base());
        spec.fields[0] = Some(FieldSpec {
            dist: DistSpec::Fixed(1.0),
            trend: 0.8,
            noise_sd: 0.0,
            correlation_dies: 8.0,
            clamp_lo: 0.2,
            clamp_hi: 3.0,
        });
        let p = Pipeline::new();
        let report = WaferEngine::new(&p).run(&spec, 5, 2).unwrap();
        let center = report.radial.first().unwrap().mean_yield;
        let edge = report.radial.last().unwrap().mean_yield;
        assert!(
            (center - edge).abs() > 1e-6,
            "trend must move the profile: center {center} vs edge {edge}"
        );
        let report_json = report.to_json();
        assert_eq!(WaferReport::from_json(&report_json).unwrap(), report);
    }
}
