//! Parallel scenario sweeps with deterministic seeding.
//!
//! Scenarios fan out across scoped worker threads pulling from a shared
//! queue; scenario `i` always evaluates under
//! `cnfet_sim::engine::split_seed(base_seed, i)`, so results are
//! reproducible for a given `(grid, base_seed)` regardless of worker
//! count or scheduling — the same contract the Monte-Carlo engine gives
//! its workers. The underlying [`Pipeline`] caches are order-independent
//! by construction, so sharing them across workers cannot change answers.

use crate::engine::Pipeline;
use crate::report::ScenarioReport;
use crate::spec::ScenarioSpec;
use crate::Result;
use cnt_stats::seed::split_seed;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fans a list of scenarios across worker threads.
///
/// **Deprecated shim**: kept so existing callers compile unchanged. It
/// blocks until every scenario finishes and returns the whole result
/// vector; new code should use
/// [`crate::service::YieldService::sweep`], which streams reports
/// incrementally (same seed-splitting contract, same determinism) and
/// adds cancellation and progress.
#[derive(Debug)]
pub struct SweepRunner<'a> {
    pipeline: &'a Pipeline,
    workers: usize,
}

impl<'a> SweepRunner<'a> {
    /// A runner over a shared pipeline with one worker per available CPU.
    pub fn new(pipeline: &'a Pipeline) -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self { pipeline, workers }
    }

    /// Override the worker count (builder style; clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The worker count in use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluate every scenario, returning per-scenario results in input
    /// order. A failing scenario yields its error without aborting the
    /// rest of the sweep.
    pub fn run(&self, specs: &[ScenarioSpec], base_seed: u64) -> Vec<Result<ScenarioReport>> {
        if specs.is_empty() {
            return Vec::new();
        }
        let workers = self.workers.min(specs.len());
        let next = AtomicUsize::new(0);
        let mut collected: Vec<(usize, Result<ScenarioReport>)> = Vec::with_capacity(specs.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            return local;
                        }
                        let seed = split_seed(base_seed, i as u64);
                        local.push((i, self.pipeline.evaluate(&specs[i], seed)));
                    }
                }));
            }
            for handle in handles {
                collected.extend(handle.join().expect("sweep worker panicked"));
            }
        });
        collected.sort_by_key(|(i, _)| *i);
        collected.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BackendSpec, CorrelationSpec, ScenarioGrid};

    fn fast_grid() -> Vec<ScenarioSpec> {
        let grid = ScenarioGrid::parse(
            r#"{
                "name": "t",
                "defaults": {
                    "backend": "gaussian-sum",
                    "rho": "paper",
                    "fast_design": true,
                    "m_min": "self-consistent"
                },
                "axes": {
                    "node_nm": [45, 32],
                    "correlation": ["none", "growth+aligned-layout"]
                }
            }"#,
        )
        .unwrap();
        grid.scenarios
    }

    #[test]
    fn results_keep_input_order_and_are_deterministic() {
        let pipeline = Pipeline::new();
        let specs = fast_grid();
        let one = SweepRunner::new(&pipeline).with_workers(1).run(&specs, 99);
        let many = SweepRunner::new(&pipeline).with_workers(4).run(&specs, 99);
        assert_eq!(one.len(), specs.len());
        for (i, (a, b)) in one.iter().zip(many.iter()).enumerate() {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.name, specs[i].name, "order must match input");
            assert_eq!(a.w_min_nm, b.w_min_nm, "worker count must not matter");
            assert_eq!(a.seed, b.seed, "seeds split by index, not by worker");
        }
        // A fresh pipeline (cold caches) reproduces the same numbers.
        let cold = Pipeline::new();
        let again = SweepRunner::new(&cold).with_workers(3).run(&specs, 99);
        for (a, b) in one.iter().zip(again.iter()) {
            assert_eq!(
                a.as_ref().unwrap().w_min_nm,
                b.as_ref().unwrap().w_min_nm,
                "cache warmth must not change answers"
            );
        }
    }

    #[test]
    fn monte_carlo_backend_sweeps_are_worker_independent() {
        // The acceptance contract of the MC back-end: a sweep over
        // stochastic scenarios is bit-identical for --workers 1 vs
        // --workers 8 at a fixed seed, including trial counts and CI
        // bounds.
        let grid = ScenarioGrid::parse(
            r#"{
                "name": "mc",
                "defaults": {
                    "backend": { "monte-carlo": { "rel_ci": 0.15, "max_trials": 100000, "batch": 1000 } },
                    "rho": "paper",
                    "fast_design": true
                },
                "axes": { "correlation": ["none", "growth+aligned-layout"] }
            }"#,
        )
        .unwrap();
        let pipeline = Pipeline::new();
        let one = SweepRunner::new(&pipeline)
            .with_workers(1)
            .run(&grid.scenarios, 7);
        let many = SweepRunner::new(&pipeline)
            .with_workers(8)
            .run(&grid.scenarios, 7);
        for (a, b) in one.iter().zip(many.iter()) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a, b, "MC scenario reports must be worker-independent");
            let mc = a.mc.as_ref().expect("mc provenance present");
            assert!(mc.trials > 0 && mc.ci_lo <= a.p_at_w_min && a.p_at_w_min <= mc.ci_hi);
        }
        // Correlation must still shrink W_min under the stochastic backend.
        let plain = one[0].as_ref().unwrap();
        let corr = one[1].as_ref().unwrap();
        assert!(corr.w_min_nm < plain.w_min_nm - 30.0);
    }

    #[test]
    fn bad_scenarios_fail_individually() {
        let pipeline = Pipeline::new();
        let mut specs = fast_grid();
        specs[1].yield_target = 1.5; // invalid
        specs[1].backend = BackendSpec::GaussianSum;
        let results = SweepRunner::new(&pipeline).with_workers(2).run(&specs, 1);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok(), "later scenarios still run");
    }

    #[test]
    fn empty_sweep_is_empty() {
        let pipeline = Pipeline::new();
        assert!(SweepRunner::new(&pipeline).run(&[], 0).is_empty());
    }

    #[test]
    fn correlated_scenarios_beat_uncorrelated_at_every_node() {
        let pipeline = Pipeline::new();
        let specs = fast_grid();
        let results = SweepRunner::new(&pipeline).run(&specs, 5);
        // Grid order: (45, none), (45, corr), (32, none), (32, corr).
        for pair in results.chunks(2) {
            let plain = pair[0].as_ref().unwrap();
            let corr = pair[1].as_ref().unwrap();
            assert_eq!(plain.correlation, CorrelationSpec::None.name());
            assert!(corr.w_min_nm < plain.w_min_nm);
            assert!(corr.upsizing_penalty <= plain.upsizing_penalty);
        }
    }
}
