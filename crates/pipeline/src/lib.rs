//! # cnfet-pipeline
//!
//! The unified scenario pipeline: one declarative entry point for every
//! yield computation in the workspace.
//!
//! The DAC 2010 reproduction asks the same underlying question in many
//! shapes — *given a processing corner, a correlation scenario, a library
//! and a node, what `W_min` does the yield target impose and what does the
//! upsizing cost?* Historically each figure/table hand-wired its own
//! growth → device → layout → yield chain; this crate replaces that with:
//!
//! * [`spec::ScenarioSpec`] — a declarative description of one scenario
//!   (process corner × correlation scenario × node × library × yield
//!   target × count back-end), parse/serialize via the dependency-free
//!   JSON-lite of [`json`];
//! * [`spec::ScenarioGrid`] — grid files with defaults, cartesian axes and
//!   explicit scenario lists, so process/circuit co-optimization sweeps
//!   (Hills et al.) are data, not code;
//! * [`engine::Pipeline`] — the evaluator. It caches one memoized
//!   [`cnfet_core::curve::FailureCurve`] per `(corner, backend)`, one
//!   mapped-design statistic per `(library, size)`, and one aligned
//!   library per `(library, grid policy)`, so every consumer shares the
//!   `pF(W)` hot path instead of recomputing it;
//! * [`sweep::SweepRunner`] — fans a grid across scoped threads with the
//!   deterministic seed-splitting of `cnfet_sim::engine`, collecting one
//!   [`report::ScenarioReport`] per scenario;
//! * [`report`] — structured JSON artifacts for downstream tooling.
//!
//! ## The service layer
//!
//! Long-lived callers (the `repro serve` daemon, co-optimization loops)
//! use the v1 **service API** layered on top:
//!
//! * [`service::YieldService`] — a cloneable handle over one shared
//!   [`engine::Pipeline`] whose curve/design caches are **bounded**
//!   ([`cache::BoundedCache`], capacities in [`engine::CacheConfig`]);
//! * [`envelope`] — versioned `YieldRequest` / `YieldResponse` wire
//!   envelopes (`schema: 1`) with machine-readable
//!   [`envelope::ErrorCode`]s;
//! * [`service::SweepHandle`] — incremental sweep results in
//!   deterministic index order, with cooperative cancellation and
//!   progress reporting;
//! * [`builder::ScenarioBuilder`] — the typed construction/validation
//!   path that grid files, CLI overrides, and envelopes all share;
//! * [`router::ShardRouter`] — N service shards behind a deterministic
//!   request router: bounded admission queues with backpressure/shedding
//!   ([`envelope::ErrorCode::Overloaded`]), a shared warm tier for hot
//!   results, and client-disconnect cancellation — the concurrent back
//!   end of `repro serve --shards N`.
//!
//! [`engine::Pipeline::evaluate`] and [`sweep::SweepRunner`] remain as
//! thin compatibility shims; new code should go through the service.
//!
//! ## Example
//!
//! ```
//! use cnfet_pipeline::{Pipeline, ScenarioGrid, SweepRunner};
//!
//! # fn main() -> cnfet_pipeline::Result<()> {
//! let grid = ScenarioGrid::parse(r#"{
//!     "defaults": { "backend": "gaussian-sum", "rho": "paper", "fast_design": true },
//!     "axes": { "correlation": ["none", "growth+aligned-layout"] }
//! }"#)?;
//! let pipeline = Pipeline::new();
//! let reports = SweepRunner::new(&pipeline)
//!     .run(&grid.scenarios, 20100613)
//!     .into_iter()
//!     .collect::<cnfet_pipeline::Result<Vec<_>>>()?;
//! // Correlation shrinks the upsizing threshold (155 nm → 103 nm in the paper).
//! assert!(reports[1].w_min_nm < reports[0].w_min_nm - 30.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod builder;
pub mod cache;
pub mod design;
pub mod engine;
pub mod envelope;
pub mod json;
pub mod knob;
pub mod report;
pub mod router;
pub mod service;
pub mod spec;
pub mod sweep;
pub mod wafer;

use std::error::Error;
use std::fmt;

/// Error type of the scenario pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Malformed grid/spec document.
    Parse {
        /// 1-based line in the source document.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A spec field failed validation.
    InvalidSpec {
        /// The offending field.
        field: &'static str,
        /// The constraint that was violated.
        msg: String,
    },
    /// An unknown key in a spec, grid, or envelope, with the nearest
    /// valid key by edit distance when one is plausible.
    UnknownKey {
        /// What the key names (e.g. `scenario`, `grid`, `request`).
        context: &'static str,
        /// The key as received.
        key: String,
        /// The closest valid key, when the typo is recoverable.
        suggestion: Option<String>,
    },
    /// Underlying yield-model error.
    Core(cnfet_core::CoreError),
    /// Underlying netlist/mapping error.
    Netlist(cnfet_netlist::NetlistError),
    /// Underlying layout error.
    Layout(cnfet_layout::LayoutError),
    /// Filesystem error while writing artifacts.
    Io(std::io::Error),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            PipelineError::InvalidSpec { field, msg } => {
                write!(f, "invalid scenario field `{field}`: {msg}")
            }
            PipelineError::UnknownKey {
                context,
                key,
                suggestion,
            } => {
                write!(f, "unknown {context} key `{key}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                Ok(())
            }
            PipelineError::Core(e) => write!(f, "yield-model error: {e}"),
            PipelineError::Netlist(e) => write!(f, "netlist error: {e}"),
            PipelineError::Layout(e) => write!(f, "layout error: {e}"),
            PipelineError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Core(e) => Some(e),
            PipelineError::Netlist(e) => Some(e),
            PipelineError::Layout(e) => Some(e),
            PipelineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnfet_core::CoreError> for PipelineError {
    fn from(e: cnfet_core::CoreError) -> Self {
        PipelineError::Core(e)
    }
}

impl From<cnfet_netlist::NetlistError> for PipelineError {
    fn from(e: cnfet_netlist::NetlistError) -> Self {
        PipelineError::Netlist(e)
    }
}

impl From<cnfet_layout::LayoutError> for PipelineError {
    fn from(e: cnfet_layout::LayoutError) -> Self {
        PipelineError::Layout(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

/// Result alias for the pipeline.
pub type Result<T> = std::result::Result<T, PipelineError>;

pub use builder::{
    coordinate_descent_defaults, genetic_defaults, halving_defaults, CoOptSpec, ScenarioBuilder,
    SearchAxis, SearcherSpec, COOPT_KEYS, SCENARIO_KEYS, SEARCHER_KINDS,
};
pub use cache::BoundedCache;
pub use design::DesignStats;
pub use engine::{CacheConfig, CacheStats, Pipeline, Table1Anchor};
pub use envelope::{
    ErrorCode, RequestBody, ResponseBody, ServiceError, ServiceInfo, YieldRequest, YieldResponse,
    DEFAULT_SEED, SCHEMA_VERSION,
};
pub use json::Json;
pub use knob::{dist_from_json, dist_to_json, field_from_json, field_to_json, STOCHASTIC_KNOBS};
pub use report::{
    CoOptReport, FaultReport, McBackendReport, ParetoFront, ParetoPoint, RungReport,
    ScenarioReport, SearchReport,
};
pub use router::{
    shard_for, Client, LineServer, RouterConfig, RouterStats, ShardRouter, ShardStats,
};
pub use service::{ServiceConfig, SweepHandle, SweepItem, SweepProgress, YieldService};
pub use spec::{
    mc_backend_defaults, redundancy_from_json, redundancy_to_json, BackendSpec, CornerSpec,
    CorrelationSpec, LibrarySpec, MminSpec, PuritySpec, RhoSpec, ScenarioGrid, ScenarioSpec,
};
pub use sweep::SweepRunner;
pub use wafer::{RadialBand, WaferEngine, WaferReport, WaferSpec};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_chain_preserves_sources() {
        let core = cnfet_core::CoreError::NoConvergence("wmin");
        let e: PipelineError = core.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("wmin"));
        let parse = PipelineError::Parse {
            line: 3,
            msg: "boom".into(),
        };
        assert!(parse.to_string().contains("line 3"));
    }
}
