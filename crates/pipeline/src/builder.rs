//! The typed scenario builder — one validation path for every client.
//!
//! Historically each entry point mutated [`ScenarioSpec`] through the
//! string-keyed `apply(key, value)` primitive, so the JSON grid parser,
//! the CLI `--backend` override, and programmatic callers each had their
//! own way of producing an invalid spec. [`ScenarioBuilder`] inverts that:
//! typed setters are the primitive, the JSON field path
//! ([`ScenarioBuilder::set_json`]) is one client of them, and
//! [`ScenarioBuilder::build`] is the single place a spec is validated.
//!
//! Unknown field names fail with [`PipelineError::UnknownKey`], which
//! carries the nearest valid key by edit distance — `"yeild_target"`
//! suggests `yield_target` — so the error is machine-actionable all the
//! way up through the service envelope layer.

use crate::json::Json;
use crate::spec::{
    BackendSpec, CornerSpec, CorrelationSpec, LibrarySpec, MminSpec, RhoSpec, ScenarioSpec,
};
use crate::{PipelineError, Result};
use cnfet_layout::GridPolicy;

/// Every field name [`ScenarioBuilder::set_json`] accepts, in the order
/// they appear in serialized specs. The service's `Describe` response
/// exposes this list so wire clients can introspect the schema.
pub const SCENARIO_KEYS: [&str; 13] = [
    "name",
    "corner",
    "correlation",
    "library",
    "node_nm",
    "yield_target",
    "backend",
    "m_transistors",
    "m_min",
    "rho",
    "grid",
    "fast_design",
    "mc_trials",
];

/// Levenshtein edit distance (iterative two-row form).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            curr[j + 1] = subst.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// The closest candidate to `key` by edit distance, if it is close enough
/// to plausibly be a typo (distance ≤ max(2, len/3), ties broken by
/// candidate order).
pub(crate) fn suggest(key: &str, candidates: &[&'static str]) -> Option<&'static str> {
    let budget = (key.chars().count() / 3).max(2);
    candidates
        .iter()
        .map(|c| (edit_distance(key, c), *c))
        .min_by_key(|(d, _)| *d)
        .filter(|(d, _)| *d <= budget)
        .map(|(_, c)| c)
}

/// Build an [`PipelineError::UnknownKey`] with the nearest valid key.
pub(crate) fn unknown_key(
    context: &'static str,
    key: &str,
    candidates: &[&'static str],
) -> PipelineError {
    PipelineError::UnknownKey {
        context,
        key: key.to_string(),
        suggestion: suggest(key, candidates).map(str::to_string),
    }
}

/// A typed, validating builder over [`ScenarioSpec`].
///
/// Setters are infallible (they only store typed values); all domain
/// validation happens once, in [`ScenarioBuilder::build`]. The JSON field
/// path ([`ScenarioBuilder::set_json`]) parses each value into the typed
/// setter it names, so grid files, service envelopes, and the CLI share
/// exactly one decoding path.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl Default for ScenarioBuilder {
    /// Starts from [`ScenarioSpec::baseline`] named `"scenario"`.
    fn default() -> Self {
        Self::new("scenario")
    }
}

impl ScenarioBuilder {
    /// Start from the paper's baseline configuration.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            spec: ScenarioSpec::baseline(name),
        }
    }

    /// Start from an existing spec (e.g. to derive a variant).
    pub fn from_spec(spec: ScenarioSpec) -> Self {
        Self { spec }
    }

    /// Scenario name (also names the result artifact).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Processing corner.
    pub fn corner(mut self, corner: CornerSpec) -> Self {
        self.spec.corner = corner;
        self
    }

    /// Growth/layout correlation scenario.
    pub fn correlation(mut self, correlation: CorrelationSpec) -> Self {
        self.spec.correlation = correlation;
        self
    }

    /// Cell library; also resets the node to the library's native node
    /// (override with [`ScenarioBuilder::node_nm`] afterwards).
    pub fn library(mut self, library: LibrarySpec) -> Self {
        self.spec.library = library;
        self.spec.node_nm = library.node_nm();
        self
    }

    /// Technology node to scale the design to (nm).
    pub fn node_nm(mut self, node_nm: f64) -> Self {
        self.spec.node_nm = node_nm;
        self
    }

    /// Chip yield target in `(0, 1)`.
    pub fn yield_target(mut self, yield_target: f64) -> Self {
        self.spec.yield_target = yield_target;
        self
    }

    /// Numerical count back-end.
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.spec.backend = backend;
        self
    }

    /// Chip transistor count `M`.
    pub fn m_transistors(mut self, m: f64) -> Self {
        self.spec.m_transistors = m;
        self
    }

    /// `M_min` treatment.
    pub fn m_min(mut self, m_min: MminSpec) -> Self {
        self.spec.m_min = m_min;
        self
    }

    /// Critical-FET density source.
    pub fn rho(mut self, rho: RhoSpec) -> Self {
        self.spec.rho = rho;
        self
    }

    /// Aligned-active grid policy.
    pub fn grid(mut self, grid: GridPolicy) -> Self {
        self.spec.grid = grid;
        self
    }

    /// Use the reduced OpenRISC-class design.
    pub fn fast_design(mut self, fast: bool) -> Self {
        self.spec.fast_design = fast;
        self
    }

    /// Conditional-MC trials for the non-aligned row cross-check.
    pub fn mc_trials(mut self, trials: u32) -> Self {
        self.spec.mc_trials = trials;
        self
    }

    /// Apply one named field from a JSON value — the merge primitive the
    /// grid parser (defaults / axes / explicit scenarios) and the service
    /// envelope layer are built on.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownKey`] (with a nearest-key suggestion) for
    /// unknown field names, [`PipelineError::InvalidSpec`] for wrong
    /// types.
    pub fn set_json(mut self, key: &str, value: &Json) -> Result<Self> {
        let invalid = |field: &'static str, msg: &str| PipelineError::InvalidSpec {
            field,
            msg: msg.into(),
        };
        let num = |field: &'static str| -> Result<f64> {
            value
                .as_f64()
                .ok_or_else(|| invalid(field, "must be a number"))
        };
        match key {
            "name" => {
                self.spec.name = value
                    .as_str()
                    .ok_or_else(|| invalid("name", "must be a string"))?
                    .to_string();
                Ok(self)
            }
            "corner" => Ok(self.corner(CornerSpec::from_json(value)?)),
            "correlation" => Ok(self.correlation(CorrelationSpec::from_json(value)?)),
            "library" => Ok(self.library(LibrarySpec::from_json(value)?)),
            "node_nm" => {
                let v = num("node_nm")?;
                Ok(self.node_nm(v))
            }
            "yield_target" => {
                let v = num("yield_target")?;
                Ok(self.yield_target(v))
            }
            "backend" => Ok(self.backend(BackendSpec::from_json(value)?)),
            "m_transistors" => {
                let v = num("m_transistors")?;
                Ok(self.m_transistors(v))
            }
            "m_min" => match value {
                Json::Str(s) if s == "self-consistent" => Ok(self.m_min(MminSpec::SelfConsistent)),
                Json::Num(f) => Ok(self.m_min(MminSpec::Fraction(*f))),
                _ => Err(invalid(
                    "m_min",
                    "must be a fraction or \"self-consistent\"",
                )),
            },
            "rho" => match value.as_str() {
                Some("paper") => Ok(self.rho(RhoSpec::Paper)),
                Some("measured") => Ok(self.rho(RhoSpec::Measured)),
                _ => Err(invalid("rho", "must be \"paper\" or \"measured\"")),
            },
            "grid" => match value.as_str() {
                Some("single") => Ok(self.grid(GridPolicy::Single)),
                Some("dual") => Ok(self.grid(GridPolicy::Dual)),
                _ => Err(invalid("grid", "must be \"single\" or \"dual\"")),
            },
            "fast_design" => {
                let v = value
                    .as_bool()
                    .ok_or_else(|| invalid("fast_design", "must be a boolean"))?;
                Ok(self.fast_design(v))
            }
            "mc_trials" => {
                let v = num("mc_trials")?;
                Ok(self.mc_trials(v as u32))
            }
            other => Err(unknown_key("scenario", other, &SCENARIO_KEYS)),
        }
    }

    /// Peek at the spec as configured so far (not yet validated).
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Validate and return the finished spec.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] naming the offending field.
    pub fn build(self) -> Result<ScenarioSpec> {
        self.spec.validate()?;
        Ok(self.spec)
    }

    /// Return the spec **without** validating — for merge pipelines (grid
    /// defaults, axis products) that validate each finished scenario once
    /// after all fields are applied.
    pub fn build_unchecked(self) -> ScenarioSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_setters_build_a_valid_spec() {
        let spec = ScenarioBuilder::new("typed")
            .corner(CornerSpec::IdealRemoval)
            .correlation(CorrelationSpec::GrowthAlignedLayout)
            .library(LibrarySpec::Commercial65)
            .node_nm(32.0)
            .yield_target(0.95)
            .backend(BackendSpec::GaussianSum)
            .m_min(MminSpec::SelfConsistent)
            .rho(RhoSpec::Paper)
            .grid(GridPolicy::Dual)
            .fast_design(true)
            .build()
            .unwrap();
        assert_eq!(spec.name, "typed");
        assert_eq!(spec.corner, CornerSpec::IdealRemoval);
        assert_eq!(spec.library, LibrarySpec::Commercial65);
        assert_eq!(spec.node_nm, 32.0, "node override survives library()");
        assert_eq!(spec.grid, GridPolicy::Dual);
    }

    #[test]
    fn library_resets_node_unless_overridden_after() {
        let spec = ScenarioBuilder::new("n")
            .node_nm(22.0)
            .library(LibrarySpec::Commercial65)
            .build()
            .unwrap();
        assert_eq!(spec.node_nm, 65.0, "library() resets the node");
    }

    #[test]
    fn build_validates() {
        assert!(ScenarioBuilder::new("bad")
            .yield_target(1.5)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new("bad").node_nm(-1.0).build().is_err());
    }

    #[test]
    fn json_path_matches_typed_path() {
        let typed = ScenarioBuilder::new("x")
            .library(LibrarySpec::Commercial65)
            .yield_target(0.95)
            .build()
            .unwrap();
        let json = ScenarioBuilder::new("x")
            .set_json("library", &Json::Str("commercial65".into()))
            .unwrap()
            .set_json("yield_target", &Json::Num(0.95))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(typed, json);
    }

    #[test]
    fn unknown_keys_get_a_suggestion() {
        let err = ScenarioBuilder::new("t")
            .set_json("yeild_target", &Json::Num(0.9))
            .unwrap_err();
        match err {
            PipelineError::UnknownKey {
                key, suggestion, ..
            } => {
                assert_eq!(key, "yeild_target");
                assert_eq!(suggestion.as_deref(), Some("yield_target"));
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        // Display names the suggestion too, for CLI users.
        let err = ScenarioBuilder::new("t")
            .set_json("corelation", &Json::Str("none".into()))
            .unwrap_err();
        assert!(
            err.to_string().contains("did you mean `correlation`"),
            "message: {err}"
        );
    }

    #[test]
    fn hopeless_keys_get_no_suggestion() {
        let err = ScenarioBuilder::new("t")
            .set_json("zzzzzzzzzz", &Json::Num(1.0))
            .unwrap_err();
        match err {
            PipelineError::UnknownKey { suggestion, .. } => assert_eq!(suggestion, None),
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(suggest("nodenm", &SCENARIO_KEYS), Some("node_nm"));
        assert_eq!(suggest("backened", &SCENARIO_KEYS), Some("backend"));
    }
}
