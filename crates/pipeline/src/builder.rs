//! The typed scenario builder — one validation path for every client.
//!
//! Historically each entry point mutated [`ScenarioSpec`] through the
//! string-keyed `apply(key, value)` primitive, so the JSON grid parser,
//! the CLI `--backend` override, and programmatic callers each had their
//! own way of producing an invalid spec. [`ScenarioBuilder`] inverts that:
//! typed setters are the primitive, the JSON field path
//! ([`ScenarioBuilder::set_json`]) is one client of them, and
//! [`ScenarioBuilder::build`] is the single place a spec is validated.
//!
//! Unknown field names fail with [`PipelineError::UnknownKey`], which
//! carries the nearest valid key by edit distance — `"yeild_target"`
//! suggests `yield_target` — so the error is machine-actionable all the
//! way up through the service envelope layer.

use crate::json::Json;
use crate::spec::{
    redundancy_from_json, BackendSpec, CornerSpec, CorrelationSpec, LibrarySpec, MminSpec,
    PuritySpec, RhoSpec, ScenarioSpec,
};
use crate::{PipelineError, Result};
use cnfet_fault::RedundancyScheme;
use cnfet_layout::GridPolicy;

/// Every field name [`ScenarioBuilder::set_json`] accepts, in the order
/// they appear in serialized specs. The service's `Describe` response
/// exposes this list so wire clients can introspect the schema.
pub const SCENARIO_KEYS: [&str; 17] = [
    "name",
    "corner",
    "correlation",
    "library",
    "node_nm",
    "yield_target",
    "backend",
    "m_transistors",
    "m_min",
    "rho",
    "density",
    "l_cnt_um",
    "purity",
    "redundancy",
    "grid",
    "fast_design",
    "mc_trials",
];

/// Levenshtein edit distance (iterative two-row form).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            curr[j + 1] = subst.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// The closest candidate to `key` by edit distance, if it is close enough
/// to plausibly be a typo (distance ≤ max(2, len/3), ties broken by
/// candidate order).
pub(crate) fn suggest(key: &str, candidates: &[&'static str]) -> Option<&'static str> {
    let budget = (key.chars().count() / 3).max(2);
    candidates
        .iter()
        .map(|c| (edit_distance(key, c), *c))
        .min_by_key(|(d, _)| *d)
        .filter(|(d, _)| *d <= budget)
        .map(|(_, c)| c)
}

/// Build an [`PipelineError::UnknownKey`] with the nearest valid key by
/// edit distance (suggested when the typo is within max(2, len/3) edits).
/// Public so downstream front ends (the `cnfet-opt` fab search, custom
/// spec layers) report typos with the same structure and suggestion rule
/// as the core parsers.
pub fn unknown_key(context: &'static str, key: &str, candidates: &[&'static str]) -> PipelineError {
    PipelineError::UnknownKey {
        context,
        key: key.to_string(),
        suggestion: suggest(key, candidates).map(str::to_string),
    }
}

/// A typed, validating builder over [`ScenarioSpec`].
///
/// Setters are infallible (they only store typed values); all domain
/// validation happens once, in [`ScenarioBuilder::build`]. The JSON field
/// path ([`ScenarioBuilder::set_json`]) parses each value into the typed
/// setter it names, so grid files, service envelopes, and the CLI share
/// exactly one decoding path.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl Default for ScenarioBuilder {
    /// Starts from [`ScenarioSpec::baseline`] named `"scenario"`.
    fn default() -> Self {
        Self::new("scenario")
    }
}

impl ScenarioBuilder {
    /// Start from the paper's baseline configuration.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            spec: ScenarioSpec::baseline(name),
        }
    }

    /// Start from an existing spec (e.g. to derive a variant).
    pub fn from_spec(spec: ScenarioSpec) -> Self {
        Self { spec }
    }

    /// Scenario name (also names the result artifact).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Processing corner.
    pub fn corner(mut self, corner: CornerSpec) -> Self {
        self.spec.corner = corner;
        self
    }

    /// Growth/layout correlation scenario.
    pub fn correlation(mut self, correlation: CorrelationSpec) -> Self {
        self.spec.correlation = correlation;
        self
    }

    /// Cell library; also resets the node to the library's native node
    /// (override with [`ScenarioBuilder::node_nm`] afterwards).
    pub fn library(mut self, library: LibrarySpec) -> Self {
        self.spec.library = library;
        self.spec.node_nm = library.node_nm();
        self
    }

    /// Technology node to scale the design to (nm).
    pub fn node_nm(mut self, node_nm: f64) -> Self {
        self.spec.node_nm = node_nm;
        self
    }

    /// Chip yield target in `(0, 1)`.
    pub fn yield_target(mut self, yield_target: f64) -> Self {
        self.spec.yield_target = yield_target;
        self
    }

    /// Numerical count back-end.
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.spec.backend = backend;
        self
    }

    /// Chip transistor count `M`.
    pub fn m_transistors(mut self, m: f64) -> Self {
        self.spec.m_transistors = m;
        self
    }

    /// `M_min` treatment.
    pub fn m_min(mut self, m_min: MminSpec) -> Self {
        self.spec.m_min = m_min;
        self
    }

    /// Critical-FET density source.
    pub fn rho(mut self, rho: RhoSpec) -> Self {
        self.spec.rho = rho;
        self
    }

    /// Critical-FET density multiplier (a distribution for stochastic
    /// scenarios; [`cnt_stats::DistSpec::Fixed`] for the scalar form).
    pub fn density(mut self, density: cnt_stats::DistSpec) -> Self {
        self.spec.density = density;
        self
    }

    /// CNT correlation length `L_CNT` (µm) — the scalar (fixed) form.
    pub fn l_cnt_um(mut self, l_cnt_um: f64) -> Self {
        self.spec.l_cnt_um = cnt_stats::DistSpec::Fixed(l_cnt_um);
        self
    }

    /// CNT correlation length `L_CNT` (µm) as a distribution.
    pub fn l_cnt_um_dist(mut self, l_cnt_um: cnt_stats::DistSpec) -> Self {
        self.spec.l_cnt_um = l_cnt_um;
        self
    }

    /// s-CNT purity spec (semiconducting fraction + defect mode).
    pub fn purity(mut self, purity: PuritySpec) -> Self {
        self.spec.purity = purity;
        self
    }

    /// Architectural redundancy scheme.
    pub fn redundancy(mut self, redundancy: RedundancyScheme) -> Self {
        self.spec.redundancy = redundancy;
        self
    }

    /// Aligned-active grid policy.
    pub fn grid(mut self, grid: GridPolicy) -> Self {
        self.spec.grid = grid;
        self
    }

    /// Use the reduced OpenRISC-class design.
    pub fn fast_design(mut self, fast: bool) -> Self {
        self.spec.fast_design = fast;
        self
    }

    /// Conditional-MC trials for the non-aligned row cross-check.
    pub fn mc_trials(mut self, trials: u32) -> Self {
        self.spec.mc_trials = trials;
        self
    }

    /// Apply one named field from a JSON value — the merge primitive the
    /// grid parser (defaults / axes / explicit scenarios) and the service
    /// envelope layer are built on.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownKey`] (with a nearest-key suggestion) for
    /// unknown field names, [`PipelineError::InvalidSpec`] for wrong
    /// types.
    pub fn set_json(mut self, key: &str, value: &Json) -> Result<Self> {
        let invalid = |field: &'static str, msg: &str| PipelineError::InvalidSpec {
            field,
            msg: msg.into(),
        };
        let num = |field: &'static str| -> Result<f64> {
            value
                .as_f64()
                .ok_or_else(|| invalid(field, "must be a number"))
        };
        match key {
            "name" => {
                self.spec.name = value
                    .as_str()
                    .ok_or_else(|| invalid("name", "must be a string"))?
                    .to_string();
                Ok(self)
            }
            "corner" => Ok(self.corner(CornerSpec::from_json(value)?)),
            "correlation" => Ok(self.correlation(CorrelationSpec::from_json(value)?)),
            "library" => Ok(self.library(LibrarySpec::from_json(value)?)),
            "node_nm" => {
                let v = num("node_nm")?;
                Ok(self.node_nm(v))
            }
            "yield_target" => {
                let v = num("yield_target")?;
                Ok(self.yield_target(v))
            }
            "backend" => Ok(self.backend(BackendSpec::from_json(value)?)),
            "m_transistors" => {
                let v = num("m_transistors")?;
                Ok(self.m_transistors(v))
            }
            "m_min" => match value {
                Json::Str(s) if s == "self-consistent" => Ok(self.m_min(MminSpec::SelfConsistent)),
                Json::Num(_) | Json::Obj(_) => {
                    let d = crate::knob::dist_from_json("m_min", value)?;
                    Ok(self.m_min(MminSpec::Fraction(d)))
                }
                _ => Err(invalid(
                    "m_min",
                    "must be a fraction, a distribution object, or \"self-consistent\"",
                )),
            },
            "rho" => match value.as_str() {
                Some("paper") => Ok(self.rho(RhoSpec::Paper)),
                Some("measured") => Ok(self.rho(RhoSpec::Measured)),
                _ => Err(invalid("rho", "must be \"paper\" or \"measured\"")),
            },
            "density" => Ok(self.density(crate::knob::dist_from_json("density", value)?)),
            "l_cnt_um" => Ok(self.l_cnt_um_dist(crate::knob::dist_from_json("l_cnt_um", value)?)),
            "purity" => Ok(self.purity(PuritySpec::from_json(value)?)),
            "redundancy" => Ok(self.redundancy(redundancy_from_json(value)?)),
            "grid" => match value.as_str() {
                Some("single") => Ok(self.grid(GridPolicy::Single)),
                Some("dual") => Ok(self.grid(GridPolicy::Dual)),
                _ => Err(invalid("grid", "must be \"single\" or \"dual\"")),
            },
            "fast_design" => {
                let v = value
                    .as_bool()
                    .ok_or_else(|| invalid("fast_design", "must be a boolean"))?;
                Ok(self.fast_design(v))
            }
            "mc_trials" => {
                let v = num("mc_trials")?;
                Ok(self.mc_trials(v as u32))
            }
            other => Err(unknown_key("scenario", other, &SCENARIO_KEYS)),
        }
    }

    /// Peek at the spec as configured so far (not yet validated).
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Validate and return the finished spec.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] naming the offending field.
    pub fn build(self) -> Result<ScenarioSpec> {
        self.spec.validate()?;
        Ok(self.spec)
    }

    /// Return the spec **without** validating — for merge pipelines (grid
    /// defaults, axis products) that validate each finished scenario once
    /// after all fields are applied.
    pub fn build_unchecked(self) -> ScenarioSpec {
        self.spec
    }
}

/// Top-level keys of a co-optimization spec document.
pub const COOPT_KEYS: [&str; 5] = ["name", "base", "search", "objective", "searcher"];

/// Names of the search strategies the `cnfet-opt` engine ships.
pub const SEARCHER_KINDS: [&str; 4] = ["grid", "coordinate-descent", "genetic", "halving"];

/// One axis of the co-optimization search space: a scenario field and the
/// ordered candidate values it may take.
///
/// **Order is semantic**: list values from least to most *process-demanding*
/// (e.g. correlation lengths ascending, metallic fractions descending).
/// The engine derives each candidate's process-demand index from its
/// normalized position along every axis, and the Pareto front trades that
/// demand against the circuit-side cost functional.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchAxis {
    /// The scenario field this axis varies (any [`SCENARIO_KEYS`] entry
    /// except `name`).
    pub key: String,
    /// The ordered candidate values (each a JSON value the field's
    /// [`ScenarioBuilder::set_json`] arm accepts).
    pub values: Vec<Json>,
}

/// Which search strategy evaluates the space (the engine lives in the
/// `cnfet-opt` crate; this is the declarative selection).
#[derive(Debug, Clone, PartialEq)]
pub enum SearcherSpec {
    /// Exhaustive batched scan of the full cartesian product — every
    /// candidate is evaluated, so the Pareto front is exact.
    GridScan,
    /// Seeded coordinate descent with restarts: from each start point,
    /// sweep the axes in order, batch-evaluating every value of one axis
    /// with the others held fixed, and move to the cheapest; repeat until
    /// a full sweep makes no move. Evaluates a fraction of the space; the
    /// Pareto front covers only visited candidates.
    CoordinateDescent {
        /// Independent seeded start points (the first restart always
        /// starts at the base configuration, index 0 on every axis).
        restarts: u32,
        /// Hard cap on coordinate sweeps per restart.
        max_sweeps: u32,
    },
    /// Population-based genetic search: seeded initial population,
    /// tournament selection, uniform crossover, per-axis mutation, and
    /// elitism. Every decision derives from `split_seed` per
    /// generation/individual, so the walk is a pure function of
    /// `(spec, seed)`.
    Genetic {
        /// Individuals per generation (the first individual of the first
        /// generation is always the base configuration).
        population: u32,
        /// Generations evolved after the initial population; 0 degrades
        /// to a plain scan of the seeded initial population.
        generations: u32,
        /// Tournament size of the selection operator.
        tournament_k: u32,
        /// Per-axis mutation probability in `[0, 1]`.
        mutation_rate: f64,
    },
    /// Successive-halving precision ladder wrapped around an inner
    /// strategy: the inner searcher runs at coarse Monte-Carlo precision
    /// (`rel_ci` relaxed by `eta` per rung), and only the top `1/eta`
    /// fraction of each rung's candidates is promoted to the next,
    /// tighter rung — cheap low-CI evaluations prune the population
    /// before expensive high-CI confirmation. On analytic back-ends the
    /// precision override is a no-op (memoized re-ranks, no extra cost).
    Halving {
        /// The strategy that explores the space at the coarsest rung
        /// (must not itself be `halving`).
        inner: Box<SearcherSpec>,
        /// Precision rungs, coarsest to exact (≥ 1; the last rung always
        /// evaluates at the spec's own backend precision).
        rungs: u32,
        /// Promotion divisor per rung (≥ 2): the top `1/eta` fraction of
        /// a rung's candidates survives to the next rung, and `rel_ci`
        /// relaxes by `eta^(rungs-1-r)` at rung `r`.
        eta: u32,
    },
}

/// The coordinate-descent defaults: 3 restarts, at most 8 sweeps each.
pub fn coordinate_descent_defaults() -> SearcherSpec {
    SearcherSpec::CoordinateDescent {
        restarts: 3,
        max_sweeps: 8,
    }
}

/// The genetic-searcher defaults: a population of 24 evolved for 8
/// generations, tournaments of 3, one mutated axis in four.
pub fn genetic_defaults() -> SearcherSpec {
    SearcherSpec::Genetic {
        population: 24,
        generations: 8,
        tournament_k: 3,
        mutation_rate: 0.25,
    }
}

/// The halving-ladder defaults: 3 rungs at `eta = 2` around a
/// default-configured genetic searcher.
pub fn halving_defaults() -> SearcherSpec {
    SearcherSpec::Halving {
        inner: Box::new(genetic_defaults()),
        rungs: 3,
        eta: 2,
    }
}

impl SearcherSpec {
    /// The canonical strategy names — what `describe` advertises and the
    /// parser suggests against (same list as [`SEARCHER_KINDS`]).
    pub const KINDS: [&'static str; 4] = SEARCHER_KINDS;

    /// The canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            SearcherSpec::GridScan => "grid",
            SearcherSpec::CoordinateDescent { .. } => "coordinate-descent",
            SearcherSpec::Genetic { .. } => "genetic",
            SearcherSpec::Halving { .. } => "halving",
        }
    }

    /// The composed display name a report carries for this strategy:
    /// the kind keyword itself, except a halving ladder names its inner
    /// strategy too (`"halving+genetic"`), matching the `searcher`
    /// field the engine writes.
    pub fn composed_name(&self) -> &'static str {
        match self {
            SearcherSpec::Halving { inner, .. } => match inner.name() {
                "genetic" => "halving+genetic",
                "grid" => "halving+grid",
                "coordinate-descent" => "halving+coordinate-descent",
                _ => "halving",
            },
            other => other.name(),
        }
    }

    /// Parse the `BackendSpec`-style forms: a bare name (`"grid"`,
    /// `"genetic"`, …), an object with a `kind` plus strategy parameters
    /// (`{"kind": "genetic", "population": 32}`), or the nested
    /// single-key form (`{"genetic": {"population": 32}}`,
    /// `{"halving": {"inner": "genetic", "eta": 3}}`).
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownKey`] (with a nearest-kind suggestion) on
    /// unknown strategy or parameter names,
    /// [`PipelineError::InvalidSpec`] on mistyped or out-of-domain
    /// parameters — all at parse time, never mid-search.
    pub fn from_json(v: &Json) -> Result<Self> {
        let invalid = |msg: String| PipelineError::InvalidSpec {
            field: "searcher",
            msg,
        };
        match v {
            Json::Str(s) => match s.as_str() {
                "grid" => Ok(SearcherSpec::GridScan),
                "coordinate-descent" => Ok(coordinate_descent_defaults()),
                "genetic" => Ok(genetic_defaults()),
                "halving" => Ok(halving_defaults()),
                other => Err(unknown_key("searcher", other, &SEARCHER_KINDS)),
            },
            Json::Obj(fields) => {
                if let Some(kind) = v.get("kind") {
                    let kind = kind
                        .as_str()
                        .ok_or_else(|| invalid("`kind` must be a string".into()))?;
                    Self::from_kind_fields(kind, v, fields, true)
                } else if fields.len() == 1 {
                    // Nested single-key form: { "genetic": { … } }.
                    let (kind, params) = &fields[0];
                    if !SEARCHER_KINDS.contains(&kind.as_str()) {
                        return Err(unknown_key("searcher", kind, &SEARCHER_KINDS));
                    }
                    let inner_fields = params
                        .as_object()
                        .ok_or_else(|| invalid(format!("`{kind}` parameters must be an object")))?;
                    Self::from_kind_fields(kind, params, inner_fields, false)
                } else {
                    Err(invalid(
                        "object form needs a `kind` string or a single strategy key".into(),
                    ))
                }
            }
            _ => Err(invalid("must be a string or an object".into())),
        }
    }

    /// Parse one strategy's parameter object. `with_kind` marks the
    /// `kind`-tagged form (where a `kind` key is legal among the fields).
    fn from_kind_fields(
        kind: &str,
        v: &Json,
        fields: &[(String, Json)],
        with_kind: bool,
    ) -> Result<Self> {
        let invalid = |msg: String| PipelineError::InvalidSpec {
            field: "searcher",
            msg,
        };
        let check_keys = |allowed: &[&'static str]| -> Result<()> {
            for (key, _) in fields {
                let known = (with_kind && key == "kind") || allowed.contains(&key.as_str());
                if !known {
                    return Err(unknown_key("searcher", key, allowed));
                }
            }
            Ok(())
        };
        let int_field = |key: &str, min: f64| -> Result<Option<u32>> {
            match v.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_f64()
                    .filter(|n| n.fract() == 0.0 && *n >= min && *n <= 1e6)
                    .map(|n| Some(n as u32))
                    .ok_or_else(|| {
                        invalid(format!("`{key}` must be an integer >= {min} (and <= 1e6)"))
                    }),
            }
        };
        match kind {
            "grid" => {
                check_keys(&[])?;
                Ok(SearcherSpec::GridScan)
            }
            "coordinate-descent" => {
                check_keys(&["restarts", "max_sweeps"])?;
                let SearcherSpec::CoordinateDescent {
                    restarts: dr,
                    max_sweeps: ds,
                } = coordinate_descent_defaults()
                else {
                    unreachable!("defaults are coordinate descent")
                };
                Ok(SearcherSpec::CoordinateDescent {
                    restarts: int_field("restarts", 1.0)?.unwrap_or(dr),
                    max_sweeps: int_field("max_sweeps", 1.0)?.unwrap_or(ds),
                })
            }
            "genetic" => {
                check_keys(&["population", "generations", "tournament_k", "mutation_rate"])?;
                let SearcherSpec::Genetic {
                    population: dp,
                    generations: dg,
                    tournament_k: dk,
                    mutation_rate: dm,
                } = genetic_defaults()
                else {
                    unreachable!("defaults are genetic")
                };
                let population = int_field("population", 2.0)?.unwrap_or(dp);
                let tournament_k = int_field("tournament_k", 1.0)?.unwrap_or(dk);
                if tournament_k > population {
                    return Err(invalid(format!(
                        "`tournament_k` ({tournament_k}) must not exceed \
                         `population` ({population})"
                    )));
                }
                let mutation_rate = match v.get("mutation_rate") {
                    None => dm,
                    Some(j) => j
                        .as_f64()
                        .filter(|m| (0.0..=1.0).contains(m))
                        .ok_or_else(|| {
                            invalid("`mutation_rate` must be a number in [0, 1]".into())
                        })?,
                };
                Ok(SearcherSpec::Genetic {
                    population,
                    generations: int_field("generations", 0.0)?.unwrap_or(dg),
                    tournament_k,
                    mutation_rate,
                })
            }
            "halving" => {
                check_keys(&["inner", "rungs", "eta"])?;
                // The regression contract: eta < 2 and rungs == 0 are
                // parse-time errors, never a mid-search panic.
                let rungs = int_field("rungs", 1.0)?.map_or(Ok(3), |r| {
                    if r == 0 {
                        Err(invalid("`rungs` must be >= 1".into()))
                    } else {
                        Ok(r)
                    }
                })?;
                let eta = match v.get("eta") {
                    None => 2,
                    Some(j) => j
                        .as_f64()
                        .filter(|n| n.fract() == 0.0 && (2.0..=64.0).contains(n))
                        .map(|n| n as u32)
                        .ok_or_else(|| invalid("`eta` must be an integer in [2, 64]".into()))?,
                };
                let inner = match v.get("inner") {
                    None => genetic_defaults(),
                    Some(j) => Self::from_json(j)?,
                };
                if matches!(inner, SearcherSpec::Halving { .. }) {
                    return Err(invalid(
                        "`halving` cannot nest another `halving` ladder".into(),
                    ));
                }
                Ok(SearcherSpec::Halving {
                    inner: Box::new(inner),
                    rungs,
                    eta,
                })
            }
            other => Err(unknown_key("searcher", other, &SEARCHER_KINDS)),
        }
    }

    /// Serialize to the wire form (normal `kind` object for parameterized
    /// strategies, bare string otherwise).
    pub fn to_json(&self) -> Json {
        match self {
            SearcherSpec::GridScan => Json::Str("grid".into()),
            SearcherSpec::CoordinateDescent {
                restarts,
                max_sweeps,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("coordinate-descent".into())),
                ("restarts".into(), Json::Num(f64::from(*restarts))),
                ("max_sweeps".into(), Json::Num(f64::from(*max_sweeps))),
            ]),
            SearcherSpec::Genetic {
                population,
                generations,
                tournament_k,
                mutation_rate,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("genetic".into())),
                ("population".into(), Json::Num(f64::from(*population))),
                ("generations".into(), Json::Num(f64::from(*generations))),
                ("tournament_k".into(), Json::Num(f64::from(*tournament_k))),
                ("mutation_rate".into(), Json::Num(*mutation_rate)),
            ]),
            SearcherSpec::Halving { inner, rungs, eta } => Json::Obj(vec![
                ("kind".into(), Json::Str("halving".into())),
                ("inner".into(), inner.to_json()),
                ("rungs".into(), Json::Num(f64::from(*rungs))),
                ("eta".into(), Json::Num(f64::from(*eta))),
            ]),
        }
    }
}

/// A declarative process–design co-optimization problem: a base scenario,
/// the search axes varied over it, the scalarized objective, and the
/// search strategy. Parsed from spec files (`repro coopt <spec.json>`) and
/// carried by the `co_opt` service envelope; executed by the `cnfet-opt`
/// engine.
///
/// The JSON document form:
///
/// ```text
/// {
///   "name": "corr-vs-width",
///   // scenario fields merged over ScenarioSpec::baseline
///   "base": { "fast_design": true, "correlation": "growth+aligned-layout" },
///   // ordered candidate values per scenario field; least → most demanding.
///   // Numeric fields also accept {"min", "max", "steps"} ranges.
///   "search": {
///     "l_cnt_um": { "min": 50, "max": 400, "steps": 4 },
///     "grid": ["single", "dual"]
///   },
///   "objective": { "w_min_weight": 1, "area_weight": 1 },   // all optional
///   "searcher": "grid"            // or {"kind": "coordinate-descent", …}
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoOptSpec {
    /// Study name (also names the Pareto artifact).
    pub name: String,
    /// The scenario every candidate starts from.
    pub base: ScenarioSpec,
    /// The search axes, in file order (earlier axes vary slowest in the
    /// canonical candidate enumeration).
    pub axes: Vec<SearchAxis>,
    /// Weights of the scalarized circuit-cost objective.
    pub objective: cnfet_core::objective::CostWeights,
    /// The strategy that walks the space.
    pub searcher: SearcherSpec,
}

fn invalid_coopt(field: &'static str, msg: impl Into<String>) -> PipelineError {
    PipelineError::InvalidSpec {
        field,
        msg: msg.into(),
    }
}

/// Parse the `objective` object onto [`cnfet_core::objective::CostWeights`]
/// (every field optional, defaults from `CostWeights::default`).
fn cost_weights_from_json(v: &Json) -> Result<cnfet_core::objective::CostWeights> {
    const KEYS: [&str; 5] = [
        "w_min_weight",
        "area_weight",
        "margin_weight",
        "shortfall_weight",
        "w_ref_nm",
    ];
    let fields = v
        .as_object()
        .ok_or_else(|| invalid_coopt("objective", "must be an object"))?;
    for (key, _) in fields {
        if !KEYS.contains(&key.as_str()) {
            return Err(unknown_key("objective", key, &KEYS));
        }
    }
    let field = |key: &str| -> Result<Option<f64>> {
        match v.get(key) {
            None => Ok(None),
            Some(j) => j
                .as_f64()
                .map(Some)
                .ok_or_else(|| invalid_coopt("objective", format!("`{key}` must be a number"))),
        }
    };
    let d = cnfet_core::objective::CostWeights::default();
    Ok(cnfet_core::objective::CostWeights {
        w_min_weight: field("w_min_weight")?.unwrap_or(d.w_min_weight),
        area_weight: field("area_weight")?.unwrap_or(d.area_weight),
        margin_weight: field("margin_weight")?.unwrap_or(d.margin_weight),
        shortfall_weight: field("shortfall_weight")?.unwrap_or(d.shortfall_weight),
        w_ref_nm: field("w_ref_nm")?.unwrap_or(d.w_ref_nm),
    })
}

fn cost_weights_to_json(w: &cnfet_core::objective::CostWeights) -> Json {
    Json::Obj(vec![
        ("w_min_weight".into(), Json::Num(w.w_min_weight)),
        ("area_weight".into(), Json::Num(w.area_weight)),
        ("margin_weight".into(), Json::Num(w.margin_weight)),
        ("shortfall_weight".into(), Json::Num(w.shortfall_weight)),
        ("w_ref_nm".into(), Json::Num(w.w_ref_nm)),
    ])
}

impl SearchAxis {
    /// Expand one `search` entry: an explicit non-empty array of values,
    /// or — for numeric fields — a `{"min", "max", "steps"}` range that
    /// expands to `steps` evenly spaced values, ascending.
    fn from_json(key: &str, v: &Json) -> Result<Self> {
        let axis_keys: Vec<&'static str> = SCENARIO_KEYS
            .iter()
            .copied()
            .filter(|k| *k != "name")
            .collect();
        if !axis_keys.contains(&key) {
            return Err(unknown_key("search axis", key, &axis_keys));
        }
        let values: Vec<Json> = match v {
            Json::Arr(values) if !values.is_empty() => values.clone(),
            Json::Arr(_) => {
                return Err(invalid_coopt(
                    "search",
                    format!("axis `{key}` must list at least one value"),
                ))
            }
            Json::Obj(fields) => {
                for (k, _) in fields {
                    if !["min", "max", "steps"].contains(&k.as_str()) {
                        return Err(unknown_key("search range", k, &["min", "max", "steps"]));
                    }
                }
                let num = |k: &str| -> Result<f64> {
                    v.get(k).and_then(Json::as_f64).ok_or_else(|| {
                        invalid_coopt("search", format!("range for `{key}` needs a number `{k}`"))
                    })
                };
                let (min, max) = (num("min")?, num("max")?);
                let steps = num("steps")?;
                if !(steps.fract() == 0.0 && (2.0..=10_000.0).contains(&steps)) {
                    return Err(invalid_coopt(
                        "search",
                        format!("range for `{key}` needs integer `steps` in [2, 10000]"),
                    ));
                }
                if !(min.is_finite() && max.is_finite() && min < max) {
                    return Err(invalid_coopt(
                        "search",
                        format!("range for `{key}` needs finite min < max"),
                    ));
                }
                let n = steps as usize;
                (0..n)
                    .map(|i| Json::Num(min + (max - min) * i as f64 / (n - 1) as f64))
                    .collect()
            }
            _ => {
                return Err(invalid_coopt(
                    "search",
                    format!("axis `{key}` must be a value array or a min/max/steps range"),
                ))
            }
        };
        Ok(Self {
            key: key.to_string(),
            values,
        })
    }
}

impl CoOptSpec {
    /// Parse a co-optimization document.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Parse`] for malformed JSON, otherwise as
    /// [`CoOptSpec::from_json`].
    pub fn parse(src: &str) -> Result<Self> {
        Self::from_json(&Json::parse(src)?)
    }

    /// Build from a parsed document (the form the `co_opt` envelope
    /// carries). Every axis value is trial-applied to the base scenario at
    /// parse time, so a typo'd value fails here with the shared builder
    /// diagnostics instead of mid-search.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownKey`] / [`PipelineError::InvalidSpec`] for
    /// unknown sections, unknown fields, or out-of-domain values.
    pub fn from_json(doc: &Json) -> Result<Self> {
        for (key, _) in doc
            .as_object()
            .ok_or_else(|| invalid_coopt("co_opt", "document must be an object"))?
        {
            if !COOPT_KEYS.contains(&key.as_str()) {
                return Err(unknown_key("co_opt", key, &COOPT_KEYS));
            }
        }
        let name = match doc.get("name") {
            None => "coopt".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| invalid_coopt("name", "must be a string"))?
                .to_string(),
        };
        let mut builder = ScenarioBuilder::new(name.clone());
        if let Some(base) = doc.get("base") {
            let fields = base
                .as_object()
                .ok_or_else(|| invalid_coopt("base", "must be an object"))?;
            for (key, value) in fields {
                builder = builder.set_json(key, value)?;
            }
        }
        let base = builder.name(name.clone()).build()?;

        let search = doc
            .get("search")
            .ok_or_else(|| invalid_coopt("search", "a co_opt spec needs a `search` object"))?;
        let entries = search
            .as_object()
            .ok_or_else(|| invalid_coopt("search", "must be an object"))?;
        if entries.is_empty() {
            return Err(invalid_coopt("search", "needs at least one axis"));
        }
        let mut axes = Vec::with_capacity(entries.len());
        for (key, value) in entries {
            let axis = SearchAxis::from_json(key, value)?;
            // Trial-apply AND validate each candidate value over the base,
            // so type and domain errors fail at parse time with the
            // field's own diagnostics instead of mid-search.
            for v in &axis.values {
                ScenarioBuilder::from_spec(base.clone())
                    .set_json(key, v)?
                    .build()?;
            }
            axes.push(axis);
        }

        let objective = match doc.get("objective") {
            None => cnfet_core::objective::CostWeights::default(),
            Some(v) => cost_weights_from_json(v)?,
        };
        objective
            .validate()
            .map_err(|e| invalid_coopt("objective", e.to_string()))?;

        let searcher = match doc.get("searcher") {
            None => SearcherSpec::GridScan,
            Some(v) => SearcherSpec::from_json(v)?,
        };

        let spec = Self {
            name,
            base,
            axes,
            objective,
            searcher,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Serialize the full (explicit) spec; ranges are written as the value
    /// lists they expanded to, so the normal form round-trips exactly.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("base".into(), self.base.to_json()),
            (
                "search".into(),
                Json::Obj(
                    self.axes
                        .iter()
                        .map(|a| (a.key.clone(), Json::Arr(a.values.clone())))
                        .collect(),
                ),
            ),
            ("objective".into(), cost_weights_to_json(&self.objective)),
            ("searcher".into(), self.searcher.to_json()),
        ])
    }

    /// Check the spec is executable: a valid base, at least one axis, a
    /// bounded candidate count, valid weights.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] naming the offending section.
    pub fn validate(&self) -> Result<()> {
        self.base.validate()?;
        self.objective
            .validate()
            .map_err(|e| invalid_coopt("objective", e.to_string()))?;
        if self.axes.is_empty() {
            return Err(invalid_coopt("search", "needs at least one axis"));
        }
        let mut keys: Vec<&str> = self.axes.iter().map(|a| a.key.as_str()).collect();
        keys.sort_unstable();
        if keys.windows(2).any(|p| p[0] == p[1]) {
            return Err(invalid_coopt("search", "axis keys must be unique"));
        }
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(invalid_coopt(
                    "search",
                    format!("axis `{}` must list at least one value", axis.key),
                ));
            }
        }
        const MAX_CANDIDATES: u64 = 1_000_000;
        if self.candidate_count() > MAX_CANDIDATES {
            return Err(invalid_coopt(
                "search",
                format!("search space exceeds {MAX_CANDIDATES} candidates"),
            ));
        }
        Ok(())
    }

    /// Size of the full search space (product of axis lengths).
    pub fn candidate_count(&self) -> u64 {
        self.axes
            .iter()
            .map(|a| a.values.len() as u64)
            .try_fold(1u64, u64::checked_mul)
            .unwrap_or(u64::MAX)
    }

    /// Build the candidate scenario for one choice vector (`choice[i]`
    /// indexes `axes[i].values`). The scenario is named
    /// `<name>/<key>=<value>/…`, so candidate artifacts are
    /// self-describing.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] for an out-of-range choice vector or
    /// a candidate whose merged fields fail validation.
    pub fn scenario(&self, choice: &[usize]) -> Result<ScenarioSpec> {
        if choice.len() != self.axes.len() {
            return Err(invalid_coopt(
                "search",
                format!(
                    "choice vector has {} entries for {} axes",
                    choice.len(),
                    self.axes.len()
                ),
            ));
        }
        let mut builder = ScenarioBuilder::from_spec(self.base.clone());
        let mut parts = vec![self.name.clone()];
        for (axis, &i) in self.axes.iter().zip(choice) {
            let value = axis.values.get(i).ok_or_else(|| {
                invalid_coopt(
                    "search",
                    format!("choice {i} out of range for axis `{}`", axis.key),
                )
            })?;
            builder = builder.set_json(&axis.key, value)?;
            parts.push(format!("{}={}", axis.key, crate::spec::axis_label(value)));
        }
        builder.name(parts.join("/")).build()
    }

    /// The normalized process-demand index of a choice vector: the mean,
    /// over axes with more than one value, of the choice's fractional
    /// position along its (least → most demanding) axis order. 0 selects
    /// the least demanding value everywhere, 1 the most demanding.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidSpec`] for an out-of-range choice vector.
    pub fn demand(&self, choice: &[usize]) -> Result<f64> {
        if choice.len() != self.axes.len()
            || self
                .axes
                .iter()
                .zip(choice)
                .any(|(a, &i)| i >= a.values.len())
        {
            return Err(invalid_coopt("search", "choice vector out of range"));
        }
        let mut sum = 0.0;
        let mut n = 0u32;
        for (axis, &i) in self.axes.iter().zip(choice) {
            if axis.values.len() > 1 {
                sum += i as f64 / (axis.values.len() - 1) as f64;
                n += 1;
            }
        }
        Ok(if n == 0 { 0.0 } else { sum / f64::from(n) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_setters_build_a_valid_spec() {
        let spec = ScenarioBuilder::new("typed")
            .corner(CornerSpec::IdealRemoval)
            .correlation(CorrelationSpec::GrowthAlignedLayout)
            .library(LibrarySpec::Commercial65)
            .node_nm(32.0)
            .yield_target(0.95)
            .backend(BackendSpec::GaussianSum)
            .m_min(MminSpec::SelfConsistent)
            .rho(RhoSpec::Paper)
            .grid(GridPolicy::Dual)
            .fast_design(true)
            .build()
            .unwrap();
        assert_eq!(spec.name, "typed");
        assert_eq!(spec.corner, CornerSpec::IdealRemoval);
        assert_eq!(spec.library, LibrarySpec::Commercial65);
        assert_eq!(spec.node_nm, 32.0, "node override survives library()");
        assert_eq!(spec.grid, GridPolicy::Dual);
    }

    #[test]
    fn library_resets_node_unless_overridden_after() {
        let spec = ScenarioBuilder::new("n")
            .node_nm(22.0)
            .library(LibrarySpec::Commercial65)
            .build()
            .unwrap();
        assert_eq!(spec.node_nm, 65.0, "library() resets the node");
    }

    #[test]
    fn build_validates() {
        assert!(ScenarioBuilder::new("bad")
            .yield_target(1.5)
            .build()
            .is_err());
        assert!(ScenarioBuilder::new("bad").node_nm(-1.0).build().is_err());
    }

    #[test]
    fn json_path_matches_typed_path() {
        let typed = ScenarioBuilder::new("x")
            .library(LibrarySpec::Commercial65)
            .yield_target(0.95)
            .build()
            .unwrap();
        let json = ScenarioBuilder::new("x")
            .set_json("library", &Json::Str("commercial65".into()))
            .unwrap()
            .set_json("yield_target", &Json::Num(0.95))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(typed, json);
    }

    #[test]
    fn unknown_keys_get_a_suggestion() {
        let err = ScenarioBuilder::new("t")
            .set_json("yeild_target", &Json::Num(0.9))
            .unwrap_err();
        match err {
            PipelineError::UnknownKey {
                key, suggestion, ..
            } => {
                assert_eq!(key, "yeild_target");
                assert_eq!(suggestion.as_deref(), Some("yield_target"));
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        // Display names the suggestion too, for CLI users.
        let err = ScenarioBuilder::new("t")
            .set_json("corelation", &Json::Str("none".into()))
            .unwrap_err();
        assert!(
            err.to_string().contains("did you mean `correlation`"),
            "message: {err}"
        );
    }

    #[test]
    fn hopeless_keys_get_no_suggestion() {
        let err = ScenarioBuilder::new("t")
            .set_json("zzzzzzzzzz", &Json::Num(1.0))
            .unwrap_err();
        match err {
            PipelineError::UnknownKey { suggestion, .. } => assert_eq!(suggestion, None),
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(suggest("nodenm", &SCENARIO_KEYS), Some("node_nm"));
        assert_eq!(suggest("backened", &SCENARIO_KEYS), Some("backend"));
    }
}
