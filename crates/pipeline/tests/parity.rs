//! Parity tests: the declarative pipeline must reproduce the numbers the
//! hand-wired experiment code produced before the refactor.

use cnfet_core::failure::FailureModel;
use cnfet_core::paper;
use cnfet_core::rowmodel::RowModel;
use cnfet_core::scaling::ScalingStudy;
use cnfet_pipeline::{
    BackendSpec, CorrelationSpec, LibrarySpec, MminSpec, Pipeline, RhoSpec, ScenarioSpec,
};

/// One Fig 3.3-style scenario (self-consistent `M_min`, paper density).
fn scaling_spec(node: f64, correlated: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(format!("parity/{node}/{correlated}"));
    spec.node_nm = node;
    spec.correlation = if correlated {
        CorrelationSpec::GrowthAlignedLayout
    } else {
        CorrelationSpec::None
    };
    spec.m_min = MminSpec::SelfConsistent;
    spec.rho = RhoSpec::Paper;
    spec.fast_design = true;
    spec
}

#[test]
fn pipeline_matches_scaling_study_at_every_node() {
    let pipeline = Pipeline::new();
    let stats = pipeline
        .design_stats(LibrarySpec::Nangate45, true)
        .expect("design stats");
    let study = ScalingStudy::new(
        FailureModel::paper_default(cnfet_core::ProcessCorner::aggressive().unwrap()).unwrap(),
        45.0,
        stats.width_pairs.clone(),
        paper::YIELD_TARGET,
        paper::M_TRANSISTORS,
        RowModel::from_design(paper::L_CNT_UM, paper::RHO_MIN_FET_PER_UM).unwrap(),
    )
    .unwrap();
    let expected = study.run(&paper::SCALING_NODES_NM).unwrap();

    for r in &expected {
        let plain = pipeline.evaluate(&scaling_spec(r.node, false), 0).unwrap();
        let corr = pipeline.evaluate(&scaling_spec(r.node, true), 0).unwrap();
        assert!(
            (plain.w_min_nm - r.w_min_plain).abs() < 1.0,
            "node {}: plain {} vs study {}",
            r.node,
            plain.w_min_nm,
            r.w_min_plain
        );
        assert!(
            (corr.w_min_nm - r.w_min_corr).abs() < 1.0,
            "node {}: corr {} vs study {}",
            r.node,
            corr.w_min_nm,
            r.w_min_corr
        );
        assert!((plain.upsizing_penalty - r.penalty_plain).abs() < 0.01);
        assert!((corr.upsizing_penalty - r.penalty_corr).abs() < 0.01);
        assert!((corr.relaxation - r.relaxation).abs() < 1e-9);
    }
}

#[test]
fn fixed_mmin_matches_the_direct_solver() {
    // Table-2 treatment: fixed 33 % M_min, single solve, no fixed point.
    let pipeline = Pipeline::new();
    let mut spec = ScenarioSpec::baseline("parity/fixed");
    spec.backend = BackendSpec::Convolution { step: 0.05 };
    spec.rho = RhoSpec::Paper;
    spec.fast_design = true;
    spec.correlation = CorrelationSpec::GrowthAlignedLayout;
    let report = pipeline.evaluate(&spec, 0).unwrap();

    let model =
        FailureModel::paper_default(cnfet_core::ProcessCorner::aggressive().unwrap()).unwrap();
    let solver = cnfet_core::WminSolver::new(model);
    let direct = solver
        .solve_relaxed(
            paper::YIELD_TARGET,
            paper::MMIN_FRACTION * paper::M_TRANSISTORS,
            paper::M_R_MIN,
        )
        .unwrap();
    assert!(
        (report.w_min_nm - direct.w_min).abs() < 0.5,
        "pipeline {} vs direct {}",
        report.w_min_nm,
        direct.w_min
    );
    assert!((report.w_min_nm - paper::WMIN_CORRELATED_NM).abs() < 8.0);
}
