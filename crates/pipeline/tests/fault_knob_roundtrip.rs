//! Property tests for the fault-knob wire forms: every `purity` and
//! `redundancy` value the parsers accept must survive JSON serialize →
//! parse unchanged, scalar back-compat must hold, and bad values must be
//! rejected with structured, suggestion-carrying errors.

use cnfet_fault::{PurityMode, RedundancyScheme};
use cnfet_pipeline::{
    redundancy_from_json, redundancy_to_json, Json, PipelineError, PuritySpec, ScenarioBuilder,
    ScenarioSpec,
};
use cnt_stats::DistSpec;
use proptest::prelude::*;

/// A generated purity spec from plain scalars (kept in the knob's wire
/// domain so validation never interferes with the round-trip property).
fn purity(mode: bool, kind: usize, a: f64, b: f64) -> PuritySpec {
    let (lo, hi) = (0.5 + 0.4 * a.min(b), 0.5 + 0.4 * a.max(b));
    let dist = match kind % 3 {
        0 => DistSpec::Fixed(lo),
        1 => DistSpec::Uniform { lo, hi: hi + 1e-3 },
        _ => DistSpec::Gaussian {
            mean: hi,
            sd: 1e-4 + a * 1e-3,
        },
    };
    PuritySpec {
        dist,
        mode: if mode {
            PurityMode::Removal
        } else {
            PurityMode::Short
        },
    }
}

/// A generated redundancy scheme with in-domain parameters.
fn redundancy(kind: usize, a: u64, b: u64, cov: f64) -> RedundancyScheme {
    match kind % 4 {
        0 => RedundancyScheme::None,
        1 => RedundancyScheme::Tmr,
        2 => RedundancyScheme::SpareUnits {
            spares: 1 + a % 64,
            unit_size: 1 + b % 1_000_000,
        },
        _ => RedundancyScheme::RepairableTile {
            tiles: 1 + a % 4096,
            spare_tiles: 1 + b % 64,
            test_coverage: cov,
        },
    }
}

proptest! {
    #[test]
    fn purity_specs_round_trip(
        mode in proptest::bool::ANY,
        kind in 0usize..3,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let spec = purity(mode, kind, a, b);
        prop_assume!(spec.validate().is_ok());
        let wire = spec.to_json();
        let back = PuritySpec::from_json(&wire).unwrap();
        prop_assert_eq!(back, spec);
        // Serialization is a normal form: a second trip is byte-stable.
        prop_assert_eq!(back.to_json().to_string_pretty(), wire.to_string_pretty());
    }

    #[test]
    fn redundancy_schemes_round_trip(
        kind in 0usize..4,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        cov in 0.0f64..1.0,
    ) {
        let scheme = redundancy(kind, a, b, cov);
        prop_assume!(scheme.validate().is_ok());
        let wire = redundancy_to_json(&scheme);
        let back = redundancy_from_json(&wire).unwrap();
        prop_assert_eq!(back, scheme);
        prop_assert_eq!(
            redundancy_to_json(&back).to_string_pretty(),
            wire.to_string_pretty()
        );
    }

    #[test]
    fn fault_knobs_round_trip_through_a_full_scenario(
        mode in proptest::bool::ANY,
        pkind in 0usize..3,
        a in 0.0f64..1.0,
        rkind in 0usize..4,
        x in 0u64..10_000,
        y in 0u64..10_000,
        cov in 0.1f64..1.0,
    ) {
        let mut spec = ScenarioSpec::baseline("prop");
        spec.purity = purity(mode, pkind, a, a);
        spec.redundancy = redundancy(rkind, x, y, cov);
        prop_assume!(spec.validate().is_ok());
        let wire = spec.to_json();
        let back = ScenarioSpec::from_json(&wire).unwrap();
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn scalar_purity_keeps_back_compat(p in 0.501f64..1.0) {
        // A bare number is the scalar wire form: Fixed dist, short mode,
        // and it serializes back to the same bare number.
        let spec = PuritySpec::from_json(&Json::Num(p)).unwrap();
        prop_assert_eq!(spec.dist, DistSpec::Fixed(p));
        prop_assert_eq!(spec.mode, PurityMode::Short);
        prop_assert_eq!(spec.to_json(), Json::Num(p));
    }

    #[test]
    fn bad_purity_values_are_rejected(idx in 0usize..5) {
        const BAD: [f64; 5] = [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY];
        let p = BAD[idx];
        let parsed = PuritySpec::from_json(&Json::Num(p));
        let invalid = match parsed {
            Err(_) => true,
            Ok(spec) => spec.validate().is_err(),
        };
        prop_assert!(invalid, "purity {p} must be rejected");
    }

    #[test]
    fn bad_redundancy_counts_are_rejected(idx in 0usize..4) {
        const BAD: [f64; 4] = [0.0, -1.0, 2.5, 1e16];
        let spares = BAD[idx];
        let wire = Json::Obj(vec![
            ("kind".into(), Json::Str("spare-units".into())),
            ("spares".into(), Json::Num(spares)),
            ("unit_size".into(), Json::Num(1024.0)),
        ]);
        let rejected = match redundancy_from_json(&wire) {
            Err(_) => true,
            Ok(s) => s.validate().is_err(),
        };
        prop_assert!(rejected, "spares {spares} must be rejected");
    }
}

#[test]
fn typos_carry_suggestions() {
    // Unknown scheme kind → nearest canonical kind by edit distance.
    let err = redundancy_from_json(&Json::Obj(vec![("kind".into(), Json::Str("tmrr".into()))]))
        .unwrap_err();
    assert!(
        matches!(
            &err,
            PipelineError::UnknownKey { suggestion: Some(s), .. } if s == "tmr"
        ),
        "got {err:?}"
    );
    assert!(err.to_string().contains("did you mean `tmr`?"), "{err}");

    // Unknown scheme parameter → nearest parameter name.
    let err = redundancy_from_json(
        &Json::parse(r#"{ "kind": "spare-units", "spare": 2, "unit_size": 64 }"#).unwrap(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("did you mean `spares`?"), "{err}");

    // Unknown purity mode and misspelled purity parameter.
    let err = PuritySpec::from_json(&Json::parse(r#"{ "mode": "shrot", "dist": 0.99 }"#).unwrap())
        .unwrap_err();
    assert!(err.to_string().contains("short"), "{err}");
    let err = PuritySpec::from_json(&Json::parse(r#"{ "mode": "short", "dst": 0.99 }"#).unwrap())
        .unwrap_err();
    assert!(err.to_string().contains("did you mean `dist`?"), "{err}");

    // The builder surfaces the same structured codes for the new keys.
    let err = ScenarioBuilder::new("t")
        .set_json("redundancy", &Json::Str("spare-units".into()))
        .unwrap_err();
    assert!(err.to_string().contains("parameters"), "{err}");
}
