//! Exhaustive error-path coverage of [`ScenarioBuilder::set_json`]: every
//! field arm's rejection, the [`ErrorCode`] each one maps to on the wire,
//! and the Levenshtein nearest-key suggestion text — so a client typo can
//! never silently fall back to a default.

use cnfet_pipeline::{
    ErrorCode, Json, PipelineError, ScenarioBuilder, ServiceError, SCENARIO_KEYS,
};

fn set(key: &str, value: &str) -> Result<ScenarioBuilder, PipelineError> {
    ScenarioBuilder::new("t").set_json(key, &Json::parse(value).unwrap())
}

/// The wire classification of a builder error.
fn code(err: &PipelineError) -> ErrorCode {
    ServiceError::from_pipeline(err).code
}

#[test]
fn every_field_arm_rejects_mistyped_values_as_bad_spec() {
    // (key, bad value, fragment the message must carry): one case per
    // `set_json` arm, each a type (not domain) violation.
    let cases = [
        ("name", "1", "must be a string"),
        ("corner", "42", "must be a string or an object"),
        ("corner", r#""bogus""#, "unknown corner"),
        ("corner", r#"{ "pm": 0.3 }"#, "missing `p_rs`"),
        (
            "corner",
            r#"{ "pm": "x", "p_rs": 0.1 }"#,
            "must be a number",
        ),
        ("correlation", "3", "must be a string"),
        ("correlation", r#""sideways""#, "unknown scenario"),
        ("library", "1", "must be a string"),
        ("library", r#""tsmc7""#, "unknown library"),
        ("node_nm", r#""wide""#, "must be a number"),
        ("yield_target", "true", "must be a number"),
        ("backend", "9", "must be a string or an object"),
        ("backend", r#""quantum""#, "unknown backend"),
        (
            "backend",
            r#"{ "kind": "monte-carlo", "trials": 5 }"#,
            "unknown monte-carlo field",
        ),
        ("m_transistors", r#""many""#, "must be a number"),
        (
            "m_min",
            r#""most""#,
            "distribution object, or \"self-consistent\"",
        ),
        ("rho", "1.8", "\"paper\" or \"measured\""),
        ("density", r#""thick""#, "must be a number"),
        ("l_cnt_um", r#""long""#, "must be a number"),
        ("grid", r#""triple""#, "\"single\" or \"dual\""),
        ("fast_design", r#""yes""#, "must be a boolean"),
        ("mc_trials", r#""lots""#, "must be a number"),
    ];
    for (key, value, fragment) in cases {
        let err = set(key, value).unwrap_err();
        assert!(
            err.to_string().contains(fragment),
            "`{key}` = {value}: message `{err}` must contain `{fragment}`"
        );
        match code(&err) {
            ErrorCode::BadSpec { field } => assert!(
                !field.is_empty(),
                "`{key}` must map to bad_spec with a named field"
            ),
            other => panic!("`{key}` = {value} must map to bad_spec, got {other:?}"),
        }
    }
}

#[test]
fn every_domain_violation_is_caught_at_build() {
    // Values with the right type but out of domain: accepted by the
    // setter, rejected by `build()`.
    let cases = [
        ("node_nm", "-45"),
        ("node_nm", "0"),
        ("yield_target", "0"),
        ("yield_target", "1.5"),
        ("m_transistors", "0.5"),
        ("m_min", "0"),
        ("m_min", "1.5"),
        ("l_cnt_um", "-200"),
        ("l_cnt_um", "0"),
        ("backend", r#"{ "kind": "convolution", "step": -0.05 }"#),
        ("backend", r#"{ "monte-carlo": { "rel_ci": 0 } }"#),
    ];
    for (key, value) in cases {
        let err = set(key, value)
            .unwrap_or_else(|e| panic!("`{key}` = {value} is a domain error, not {e}"))
            .build()
            .unwrap_err();
        match code(&err) {
            ErrorCode::BadSpec { .. } => {}
            other => panic!("`{key}` = {value} must map to bad_spec, got {other:?}"),
        }
    }
}

#[test]
fn unknown_keys_map_to_unknown_key_with_the_documented_suggestion() {
    // The satellite contract: the Levenshtein suggestion is part of the
    // error surface, both structured and in display text.
    let cases = [
        ("yeild_target", Some("yield_target")),
        ("corelation", Some("correlation")),
        ("nodenm", Some("node_nm")),
        ("l_cnt_un", Some("l_cnt_um")),
        ("backened", Some("backend")),
        ("fastdesign", Some("fast_design")),
        ("zzzzzzzzzz", None), // hopeless typos get no guess
    ];
    for (key, expected) in cases {
        let err = set(key, "1").unwrap_err();
        match &err {
            PipelineError::UnknownKey {
                key: got,
                suggestion,
                ..
            } => {
                assert_eq!(got, key);
                assert_eq!(suggestion.as_deref(), expected, "for `{key}`");
            }
            other => panic!("`{key}` must be UnknownKey, got {other:?}"),
        }
        match code(&err) {
            ErrorCode::UnknownKey {
                key: got,
                suggestion,
            } => {
                assert_eq!(got, key);
                assert_eq!(suggestion.as_deref(), expected);
            }
            other => panic!("`{key}` must map to unknown_key, got {other:?}"),
        }
        match expected {
            Some(s) => assert!(
                err.to_string().contains(&format!("did you mean `{s}`?")),
                "display for `{key}`: {err}"
            ),
            None => assert!(
                !err.to_string().contains("did you mean"),
                "display for `{key}`: {err}"
            ),
        }
    }
}

#[test]
fn every_scenario_key_has_a_working_set_json_arm() {
    // The inverse guarantee: the advertised schema (`SCENARIO_KEYS`, which
    // `describe` exposes on the wire) is exactly the set of keys the
    // builder accepts.
    let good = [
        ("name", r#""renamed""#),
        ("corner", r#""ideal-removal""#),
        ("correlation", r#""growth""#),
        ("library", r#""commercial65""#),
        ("node_nm", "32"),
        ("yield_target", "0.95"),
        ("backend", r#""gaussian-sum""#),
        ("m_transistors", "1e7"),
        // A fraction, not "self-consistent": the fault knobs below need a
        // closed-form M_min (the builder rejects the combination).
        ("m_min", "0.33"),
        ("rho", r#""paper""#),
        ("density", r#"{ "gaussian": { "mean": 1, "sd": 0.05 } }"#),
        ("l_cnt_um", "400"),
        ("purity", "0.9999"),
        (
            "redundancy",
            r#"{ "kind": "spare-units", "spares": 2, "unit_size": 4096 }"#,
        ),
        ("grid", r#""dual""#),
        ("fast_design", "true"),
        ("mc_trials", "50"),
    ];
    assert_eq!(good.len(), SCENARIO_KEYS.len());
    let mut builder = ScenarioBuilder::new("t");
    for (key, value) in good {
        assert!(SCENARIO_KEYS.contains(&key), "`{key}` must be advertised");
        builder = builder
            .set_json(key, &Json::parse(value).unwrap())
            .unwrap_or_else(|e| panic!("`{key}` = {value} must be accepted: {e}"));
    }
    let spec = builder.build().unwrap();
    assert_eq!(spec.name, "renamed");
    assert_eq!(spec.l_cnt_um, cnt_stats::DistSpec::Fixed(400.0));
}

#[test]
fn coopt_axis_values_are_domain_validated_at_parse_time() {
    // A domain-invalid candidate value must fail at parse, not mid-search.
    let err = cnfet_pipeline::CoOptSpec::parse(
        r#"{ "name": "bad", "search": { "l_cnt_um": [-50, 200] } }"#,
    )
    .unwrap_err();
    assert!(
        matches!(code(&err), ErrorCode::BadSpec { field } if field == "l_cnt_um"),
        "got {err:?}"
    );
    // Out-of-domain values reachable only through an axis combination
    // still fail per-value against the base.
    assert!(cnfet_pipeline::CoOptSpec::parse(
        r#"{ "name": "bad", "search": { "yield_target": [0.9, 1.5] } }"#,
    )
    .is_err());
}

#[test]
fn searcher_forms_reject_every_malformed_genetic_and_halving_shape() {
    use cnfet_pipeline::SearcherSpec;
    let parse = |s: &str| SearcherSpec::from_json(&Json::parse(s).unwrap());
    // Mistyped or out-of-domain parameters: all bad_spec on the wire,
    // all caught at parse time — never a mid-search panic.
    let bad = [
        (
            r#"{ "genetic": { "population": 1 } }"#,
            "`population` must be an integer >= 2",
        ),
        (
            r#"{ "genetic": { "population": 2.5 } }"#,
            "`population` must be an integer",
        ),
        (
            r#"{ "genetic": { "mutation_rate": 1.5 } }"#,
            "`mutation_rate` must be a number in [0, 1]",
        ),
        (
            r#"{ "genetic": { "mutation_rate": "high" } }"#,
            "`mutation_rate` must be a number in [0, 1]",
        ),
        (
            r#"{ "kind": "genetic", "population": 4, "tournament_k": 9 }"#,
            "`tournament_k` (9) must not exceed `population` (4)",
        ),
        // The regression contract: a zero-rung or sub-2-eta ladder is a
        // parse error, not a degenerate search.
        (
            r#"{ "halving": { "rungs": 0 } }"#,
            "`rungs` must be an integer >= 1",
        ),
        (
            r#"{ "halving": { "eta": 1 } }"#,
            "`eta` must be an integer in [2, 64]",
        ),
        (
            r#"{ "halving": { "eta": 2.5 } }"#,
            "`eta` must be an integer in [2, 64]",
        ),
        (
            r#"{ "halving": { "inner": "halving" } }"#,
            "cannot nest another `halving` ladder",
        ),
        (
            r#"{ "halving": { "inner": { "kind": "halving", "eta": 2 } } }"#,
            "cannot nest another `halving` ladder",
        ),
        (
            r#"{ "genetic": 7 }"#,
            "`genetic` parameters must be an object",
        ),
        (
            r#"{ "grid": {}, "genetic": {} }"#,
            "needs a `kind` string or a single strategy key",
        ),
    ];
    for (form, fragment) in bad {
        let err = parse(form).unwrap_err();
        assert!(
            err.to_string().contains(fragment),
            "{form}: message `{err}` must contain `{fragment}`"
        );
        assert!(
            matches!(code(&err), ErrorCode::BadSpec { field } if field == "searcher"),
            "{form} must map to bad_spec on the wire, got {err:?}"
        );
    }
    // Typos in strategy and parameter names: unknown_key with the
    // Levenshtein nearest-name suggestion.
    let typos = [
        (r#""genetc""#, "genetc", Some("genetic")),
        (r#""halvng""#, "halvng", Some("halving")),
        (
            r#"{ "genetic": { "poplation": 8 } }"#,
            "poplation",
            Some("population"),
        ),
        (
            r#"{ "halving": { "inner": "grid", "rung": 2 } }"#,
            "rung",
            Some("rungs"),
        ),
        (
            r#"{ "kind": "genetic", "mutationrate": 0.2 }"#,
            "mutationrate",
            Some("mutation_rate"),
        ),
    ];
    for (form, key, expected) in typos {
        let err = parse(form).unwrap_err();
        match code(&err) {
            ErrorCode::UnknownKey {
                key: got,
                suggestion,
            } => {
                assert_eq!(got, key, "for {form}");
                assert_eq!(suggestion.as_deref(), expected, "for {form}");
            }
            other => panic!("{form} must map to unknown_key, got {other:?}"),
        }
        if let Some(s) = expected {
            assert!(
                err.to_string().contains(&format!("did you mean `{s}`?")),
                "display for {form}: {err}"
            );
        }
    }
    // The happy-path inverse: every advertised kind parses from its bare
    // name, and defaults are in-domain (a bare "halving" wraps genetic).
    for kind in cnfet_pipeline::SEARCHER_KINDS {
        let spec = parse(&format!("\"{kind}\"")).unwrap();
        assert_eq!(spec.name(), kind);
        // The composed display name matches what reports will carry: the
        // bare ladder wraps the default genetic inner.
        let composed = if kind == "halving" {
            "halving+genetic"
        } else {
            kind
        };
        assert_eq!(spec.composed_name(), composed);
        assert_eq!(
            SearcherSpec::from_json(&spec.to_json()).unwrap(),
            spec,
            "`{kind}` defaults must round-trip through the normal form"
        );
    }
}

#[test]
fn coopt_name_must_be_a_string_when_present() {
    // A mistyped `name` must error, not silently rename the artifact.
    let err =
        cnfet_pipeline::CoOptSpec::parse(r#"{ "name": 42, "search": { "l_cnt_um": [200] } }"#)
            .unwrap_err();
    assert!(err.to_string().contains("must be a string"), "got {err:?}");
    // Omitting it entirely still falls back to the documented default.
    let spec = cnfet_pipeline::CoOptSpec::parse(r#"{ "search": { "l_cnt_um": [200] } }"#).unwrap();
    assert_eq!(spec.name, "coopt");
}
