//! Integration tests of the sharded serving tier: shard-count
//! determinism, bounded-queue shedding, client-disconnect cancellation,
//! the shared warm tier, and per-id FIFO ordering.

use cnfet_pipeline::envelope::recover_id;
use cnfet_pipeline::{
    shard_for, Client, ErrorCode, Json, LineServer, ResponseBody, RouterConfig, RouterStats,
    ShardRouter, YieldResponse, YieldService,
};
use std::sync::{Arc, Condvar, Mutex};

/// A mixed session: repeated evaluates (warm-tier food), describes, a
/// streaming sweep, an unsupported body, and two deterministic errors.
fn session() -> Vec<String> {
    let mut lines = Vec::new();
    for (i, seed) in [(0, 1), (1, 2), (2, 1), (3, 1)] {
        lines.push(format!(
            r#"{{"schema":1,"id":"e{i}","body":{{"evaluate":{{"spec":{{"fast_design":true,"backend":"gaussian-sum","rho":"paper","correlation":"growth"}},"seed":{seed}}}}}}}"#
        ));
    }
    for i in 0..3 {
        lines.push(format!(r#"{{"schema":1,"id":"d{i}","body":"describe"}}"#));
    }
    lines.push(
        r#"{"schema":1,"id":"swp","body":{"sweep":{"grid":{"defaults":{"fast_design":true,"backend":"gaussian-sum","rho":"paper"},"axes":{"correlation":["none","growth"]}},"seed":3}}}"#
            .to_string(),
    );
    // A bare service declines co_opt with a structured unsupported_body.
    lines.push(
        r#"{"schema":1,"id":"co","body":{"co_opt":{"spec":{"name":"x","base":{"fast_design":true},"search":{"l_cnt_um":{"min":100,"max":200,"steps":2}},"objective":{"w_min_weight":1.0,"area_weight":1.0},"searcher":"grid"},"seed":1}}}"#
            .to_string(),
    );
    lines.push(
        r#"{"schema":1,"id":"typo","body":{"evaluate":{"spec":{"yeild_target":0.9}}}}"#.to_string(),
    );
    lines.push(r#"{"schema":2,"id":"future","body":"describe"}"#.to_string());
    lines
}

fn run_session(shards: usize) -> (Vec<String>, RouterStats) {
    let config = RouterConfig {
        shards,
        ..RouterConfig::default()
    };
    let router = ShardRouter::new(config, |_| YieldService::new());
    let (client, responses) = Client::channel();
    for line in session() {
        router.submit(line, &client);
    }
    let stats = router.shutdown();
    drop(client);
    let mut lines: Vec<String> = responses
        .iter()
        .map(|r| r.to_json().to_string_compact())
        .collect();
    lines.sort();
    (lines, stats)
}

#[test]
fn sorted_transcripts_are_byte_identical_across_shard_counts() {
    let (reference, stats1) = run_session(1);
    assert_eq!(stats1.served(), session().len() as u64);
    assert_eq!(stats1.shed() + stats1.cancelled(), 0);
    for shards in [2, 4, 7] {
        let (transcript, stats) = run_session(shards);
        assert_eq!(
            transcript, reference,
            "shard count {shards} changed response bytes"
        );
        assert_eq!(stats.served(), stats1.served());
    }
}

#[test]
fn per_id_requests_are_answered_in_submission_order() {
    let router = ShardRouter::new(
        RouterConfig {
            shards: 4,
            ..RouterConfig::default()
        },
        |_| YieldService::new(),
    );
    let (client, responses) = Client::channel();
    router.submit(
        r#"{"schema":1,"id":"x","body":{"evaluate":{"spec":{"fast_design":true,"backend":"gaussian-sum","rho":"paper"},"seed":1}}}"#,
        &client,
    );
    router.submit(r#"{"schema":1,"id":"x","body":"describe"}"#, &client);
    router.shutdown();
    drop(client);
    let bodies: Vec<YieldResponse> = responses.iter().collect();
    assert_eq!(bodies.len(), 2);
    assert!(
        matches!(bodies[0].body, ResponseBody::Report(_)),
        "same-id requests share a shard, so the evaluate answers first"
    );
    assert!(matches!(bodies[1].body, ResponseBody::Describe(_)));
}

#[test]
fn warm_tier_is_shared_and_id_independent() {
    // One shard makes the hit pattern exact (multi-shard runs can race
    // identical bodies past each other before the first insert): the
    // warm-eligible requests are four evaluates (e0/e1 distinct, e2/e3
    // repeating e0) and three describes.
    let (transcript, stats) = run_session(1);
    assert_eq!(
        (stats.warm_hits, stats.warm_misses),
        (4, 3),
        "e2, e3, d1, d2 hit; e0, e1, d0 miss: {stats:?}"
    );
    // Warm hits must be invisible in the bytes: e0/e2/e3 differ from each
    // other only by their ids.
    let body_of = |id: &str| {
        let line = transcript
            .iter()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no response for {id}"));
        line.replace(&format!("\"id\":\"{id}\""), "\"id\":\"\"")
    };
    assert_eq!(body_of("e0"), body_of("e2"));
    assert_eq!(body_of("e0"), body_of("e3"));
    assert_ne!(
        body_of("e0"),
        body_of("e1"),
        "different seeds, different artifacts"
    );
}

/// A test back end whose requests block until the shared gate opens —
/// the deterministic way to hold a shard's queue at capacity.
struct GatedServer {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GatedServer {
    fn open(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (lock, cvar) = &**gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
}

impl LineServer for GatedServer {
    fn serve_line(&self, line: &str, emit: &mut dyn FnMut(YieldResponse) -> bool) -> bool {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
        drop(open);
        let id = Json::parse(line)
            .map(|d| recover_id(&d))
            .unwrap_or_default();
        emit(YieldResponse::new(
            id,
            ResponseBody::Describe(cnfet_pipeline::ServiceInfo::default()),
        ))
    }
}

#[test]
fn full_queue_sheds_with_machine_readable_overloaded() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let router = ShardRouter::new(
        RouterConfig {
            shards: 1,
            queue_depth: 1,
            ..RouterConfig::default()
        },
        |_| GatedServer {
            gate: Arc::clone(&gate),
        },
    );
    let (client, responses) = Client::channel();
    // With the gate closed, at most two requests can be absorbed (one
    // blocked in the worker, one in the queue); everything else sheds.
    let total = 20;
    let admitted = (0..total)
        .filter(|i| {
            router.try_submit(
                format!(r#"{{"schema":1,"id":"r{i}","body":"describe"}}"#),
                &client,
            )
        })
        .count();
    assert!(admitted <= 2, "bounded queue absorbed {admitted} requests");
    GatedServer::open(&gate);
    let stats = router.shutdown();
    drop(client);
    assert_eq!(stats.shards[0].served, admitted as u64);
    assert_eq!(stats.shards[0].shed, (total - admitted) as u64);
    let shed: Vec<YieldResponse> = responses.iter().filter(|r| r.is_error()).collect();
    assert_eq!(shed.len(), total - admitted);
    for response in shed {
        match &response.body {
            ResponseBody::Error(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded { shard: 0 });
                // The shed response still correlates to its request.
                assert!(response.id.starts_with('r'), "id: {}", response.id);
            }
            other => panic!("expected overloaded error, got {other:?}"),
        }
    }
}

#[test]
fn disconnecting_mid_sweep_cancels_and_frees_the_shard() {
    let router = ShardRouter::new(
        RouterConfig {
            shards: 1,
            ..RouterConfig::default()
        },
        |_| YieldService::new(),
    );
    // A 24-scenario sweep: the client hangs up after the first streamed
    // report, which must cancel the sweep rather than compute the rest.
    // The rendezvous stream means the worker cannot emit report 1 until
    // this thread receives it, so the hang-up lands mid-sweep no matter
    // how the threads are scheduled.
    let (victim, victim_rx) = Client::rendezvous();
    router.submit(
        r#"{"schema":1,"id":"swp","body":{"sweep":{"grid":{"defaults":{"fast_design":true,"backend":"gaussian-sum","rho":"paper"},"axes":{"correlation":["none","growth","growth+aligned-layout"],"l_cnt_um":[120,140,160,180,200,220,240,260]}},"seed":1}}}"#,
        &victim,
    );
    // Queue a second request behind the sweep for the same dead client:
    // the worker must skip it without computing anything.
    router.submit(r#"{"schema":1,"id":"after","body":"describe"}"#, &victim);
    let first = victim_rx.recv().expect("first sweep report");
    assert!(matches!(
        first.body,
        ResponseBody::SweepReport { index: 0, .. }
    ));
    victim.disconnect();
    drop(victim_rx);

    // A healthy client must still be served by the same (single) shard.
    let (healthy, healthy_rx) = Client::channel();
    router.submit(r#"{"schema":1,"id":"ok","body":"describe"}"#, &healthy);
    let answer = healthy_rx.recv().expect("healthy client response");
    assert_eq!(answer.id, "ok");
    let stats = router.shutdown();
    drop(healthy);
    assert_eq!(
        stats.shards[0].cancelled, 2,
        "the aborted sweep and the skipped queued request: {stats:?}"
    );
    assert_eq!(stats.shards[0].served, 1);
}

#[test]
fn router_stats_round_trip_the_wire() {
    let (_, stats) = run_session(3);
    let wire = stats.to_json().to_string_compact();
    let back = RouterStats::from_json(&Json::parse(&wire).unwrap()).unwrap();
    assert_eq!(back, stats);
    assert!(RouterStats::from_json(&Json::parse(r#"{"warm_hits":1}"#).unwrap()).is_err());
}

#[test]
fn shard_assignment_is_a_pure_function_of_the_id() {
    for shards in [1, 2, 4, 16] {
        for id in ["", "a", "c999-r1", "台-id"] {
            assert_eq!(shard_for(id, shards), shard_for(id, shards));
            assert!(shard_for(id, shards) < shards);
        }
    }
}
