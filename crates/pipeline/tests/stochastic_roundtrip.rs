//! Property tests for the stochastic scenario layer: every `DistSpec`,
//! `FieldSpec`, and `WaferSpec` form must survive JSON serialize → parse
//! unchanged — including the scalar back-compat form, where a bare number
//! still parses as `Fixed` and re-serializes as the same bare number.

use cnfet_pipeline::{
    dist_from_json, dist_to_json, field_from_json, field_to_json, Json, ScenarioSpec, WaferSpec,
};
use cnt_stats::{DistSpec, FieldSpec};
use proptest::prelude::*;

/// A valid `DistSpec` of the chosen kind, parameterized so every variant
/// is exercised. Bounds keep the parameters inside each sampler's domain
/// (positive `sd`/`sigma`, `lo < mean < hi`).
fn dist(kind: usize, a: f64, b: f64, width: f64) -> DistSpec {
    match kind % 5 {
        0 => DistSpec::Fixed(a),
        1 => DistSpec::Gaussian { mean: a, sd: b },
        2 => DistSpec::TruncatedGaussian {
            mean: a,
            sd: b,
            lo: a - width,
            hi: a + width,
        },
        3 => DistSpec::Uniform {
            lo: a,
            hi: a + width,
        },
        _ => DistSpec::LogNormal { mu: a, sigma: b },
    }
}

proptest! {
    #[test]
    fn dist_specs_round_trip(
        kind in 0usize..5,
        a in -3.0f64..3.0,
        b in 0.01f64..2.0,
        width in 0.5f64..4.0,
    ) {
        let spec = dist(kind, a, b, width);
        spec.validate().unwrap();
        let wire = dist_to_json(&spec).to_string_compact();
        let back = dist_from_json("density", &Json::parse(&wire).unwrap())
            .map_err(|e| TestCaseError::fail(format!("{e} for {wire}")))?;
        prop_assert_eq!(back, spec);
        // Fixed must stay a bare number on the wire (scalar back-compat).
        if kind % 5 == 0 {
            prop_assert!(!wire.contains('{'), "Fixed must serialize scalar: {}", wire);
        }
    }

    #[test]
    fn scalar_numbers_parse_as_fixed(v in -1e6f64..1e6) {
        let parsed = dist_from_json("l_cnt_um", &Json::Num(v)).unwrap();
        prop_assert_eq!(parsed, DistSpec::Fixed(v));
        prop_assert_eq!(parsed.as_fixed(), Some(v));
    }

    #[test]
    fn field_specs_round_trip(
        kind in 0usize..5,
        a in -2.0f64..2.0,
        b in 0.01f64..1.0,
        width in 0.5f64..3.0,
        trend in -0.9f64..0.9,
        noise_sd in 0.0f64..0.5,
        correlation_dies in 0.5f64..64.0,
        clamp in 0.5f64..10.0,
        overrides in 0u32..32,
    ) {
        // Each bit of `overrides` toggles one hyperparameter away from its
        // default, so the trivial form, the full form, and every sparse
        // field object in between get exercised.
        let base = FieldSpec::from_dist(dist(kind, a, b, width));
        let spec = FieldSpec {
            dist: base.dist,
            trend: if overrides & 1 != 0 { trend } else { base.trend },
            noise_sd: if overrides & 2 != 0 { noise_sd } else { base.noise_sd },
            correlation_dies: if overrides & 4 != 0 {
                correlation_dies
            } else {
                base.correlation_dies
            },
            clamp_lo: if overrides & 8 != 0 { -clamp } else { base.clamp_lo },
            clamp_hi: if overrides & 16 != 0 { clamp } else { base.clamp_hi },
        };
        spec.validate().unwrap();
        let wire = field_to_json(&spec).to_string_compact();
        let back = field_from_json("density", &Json::parse(&wire).unwrap())
            .map_err(|e| TestCaseError::fail(format!("{e} for {wire}")))?;
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn wafer_specs_round_trip(
        diameter in 1u32..128,
        pin_seed in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
        kinds in prop::collection::vec(0usize..5, 3),
        mask in 0u32..8,
        trend in -0.5f64..0.5,
    ) {
        let mut base = ScenarioSpec::baseline("wafer-base");
        base.fast_design = true;
        let mut spec = WaferSpec::new("prop-wafer", diameter, base);
        spec.seed = pin_seed.then_some(seed);
        for (knob, &kind) in kinds.iter().enumerate() {
            if mask & (1 << knob) == 0 {
                continue;
            }
            // m_min fields stay in the valid fraction range (0, 1].
            let (center, sd, width) = if knob == 2 {
                (0.33, 0.02, 0.05)
            } else {
                (1.0, 0.05, 0.2)
            };
            let mut field = FieldSpec::from_dist(dist(kind, center, sd, width));
            field.trend = trend;
            field.clamp_lo = center * 0.25;
            field.clamp_hi = center * 2.0;
            spec.fields[knob] = Some(field);
        }
        let wire = spec.to_json().to_string_pretty();
        let back = WaferSpec::parse(&wire)
            .map_err(|e| TestCaseError::fail(format!("{e} for {wire}")))?;
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn scalar_scenario_documents_are_unchanged(
        density in 0.2f64..2.0,
        l_cnt in 10.0f64..500.0,
    ) {
        // The pre-DistSpec wire form: bare numbers for the migrated knobs.
        // It must parse to Fixed and re-serialize byte-identically.
        let doc = format!(
            r#"{{ "name": "legacy", "density": {density}, "l_cnt_um": {l_cnt} }}"#
        );
        let spec = ScenarioSpec::from_json(&Json::parse(&doc).unwrap()).unwrap();
        prop_assert_eq!(spec.density, DistSpec::Fixed(density));
        prop_assert_eq!(spec.l_cnt_um, DistSpec::Fixed(l_cnt));
        let rewire = spec.to_json();
        let reparsed = ScenarioSpec::from_json(
            &Json::parse(&rewire.to_string_compact()).unwrap(),
        ).unwrap();
        prop_assert_eq!(reparsed, spec);
        // The migrated knobs must stay bare numbers on the wire.
        for key in ["density", "l_cnt_um", "m_min"] {
            prop_assert!(
                matches!(rewire.get(key), Some(Json::Num(_))),
                "`{}` must stay a scalar on the wire", key
            );
        }
    }
}
