//! Integration tests of the v1 service API: deterministic envelopes,
//! in-order streaming, cancellation, and bounded caches under stress.

use cnfet_pipeline::{
    BackendSpec, CacheConfig, CornerSpec, Pipeline, RequestBody, ResponseBody, ScenarioGrid,
    ScenarioSpec, ServiceConfig, YieldRequest, YieldResponse, YieldService,
};

fn fast_spec(name: &str) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(name);
    spec.backend = BackendSpec::GaussianSum;
    spec.fast_design = true;
    spec.rho = cnfet_pipeline::RhoSpec::Paper;
    spec
}

fn fast_grid_doc() -> &'static str {
    r#"{
        "name": "svc",
        "defaults": {
            "backend": "gaussian-sum",
            "rho": "paper",
            "fast_design": true,
            "m_min": "self-consistent"
        },
        "axes": {
            "node_nm": [45, 32, 22],
            "correlation": ["none", "growth+aligned-layout"]
        }
    }"#
}

/// Serialize a response batch to the exact bytes the daemon would emit.
fn wire(responses: &[YieldResponse]) -> String {
    responses
        .iter()
        .map(|r| r.to_json().to_string_compact())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn evaluate_responses_are_byte_identical_across_repeats_and_services() {
    let service = YieldService::new();
    let request = YieldRequest::evaluate("eval-1", fast_spec("x"), 7);
    let cold = wire(&service.handle(&request));
    let warm = wire(&service.handle(&request));
    assert_eq!(cold, warm, "cache warmth must not leak into responses");
    // A brand-new service (fresh caches) emits the same bytes too.
    let other = wire(&YieldService::new().handle(&request));
    assert_eq!(cold, other);
    assert!(cold.contains("\"report\""));
}

#[test]
fn sweep_streams_in_index_order_and_is_worker_independent() {
    let grid = ScenarioGrid::parse(fast_grid_doc()).unwrap();
    let total = grid.scenarios.len();
    let service = YieldService::new();
    let run = |workers: usize| -> Vec<YieldResponse> {
        service.handle(&YieldRequest::sweep("swp", grid.clone(), 99, Some(workers)))
    };
    let one = run(1);
    let many = run(8);
    assert_eq!(
        wire(&one),
        wire(&many),
        "worker count must not change a single byte"
    );
    assert_eq!(one.len(), total + 1, "one response per scenario + done");
    for (i, response) in one[..total].iter().enumerate() {
        assert_eq!(response.id, "swp");
        match &response.body {
            ResponseBody::SweepReport {
                index, total: t, ..
            } => {
                assert_eq!(*index, i as u64, "stream must be in index order");
                assert_eq!(*t, total as u64);
            }
            other => panic!("expected sweep_report, got {other:?}"),
        }
    }
    match &one[total].body {
        ResponseBody::SweepDone { total: t, failed } => {
            assert_eq!(*t, total as u64);
            assert_eq!(*failed, 0);
        }
        other => panic!("expected sweep_done, got {other:?}"),
    }
    // Reports match the legacy one-shot path scenario for scenario.
    let pipeline = Pipeline::new();
    for (i, response) in one[..total].iter().enumerate() {
        let ResponseBody::SweepReport { report, .. } = &response.body else {
            unreachable!("checked above");
        };
        let seed = cnfet_sim::engine::split_seed(99, i as u64);
        assert_eq!(
            report,
            &pipeline.evaluate(&grid.scenarios[i], seed).unwrap()
        );
    }
}

#[test]
fn sweep_handle_reports_progress_and_supports_cancellation() {
    // Distinct corners: every scenario must build its own pF(W) curve, so
    // the workers cannot race through the whole sweep before the consumer
    // cancels.
    let specs: Vec<ScenarioSpec> = (0..24)
        .map(|i| {
            let mut spec = fast_spec(&format!("c-{i}"));
            spec.corner = CornerSpec::Custom {
                pm: 0.05 + 0.005 * f64::from(i),
                p_rs: 0.25,
                p_rm: 1.0,
            };
            spec
        })
        .collect();
    let service = YieldService::new();
    let mut handle = service.sweep_with_workers(specs, 5, 2);
    assert_eq!(handle.total(), 24);
    let first = handle.next().expect("at least one result");
    assert_eq!(first.index, 0);
    first.report.expect("scenario evaluates");
    let progress = handle.progress();
    assert_eq!(progress.delivered, 1);
    assert!(progress.completed >= 1);
    handle.cancel();
    // Drain whatever the workers still deliver; the stream must end well
    // short of the full sweep instead of blocking forever.
    let mut delivered = 1;
    for item in handle {
        assert_eq!(item.index, delivered, "order holds even while cancelling");
        delivered += 1;
    }
    assert!(
        delivered < 24,
        "cancellation must truncate the stream, delivered {delivered}"
    );
}

#[test]
fn dropping_a_sweep_handle_mid_stream_does_not_hang() {
    let specs: Vec<ScenarioSpec> = (0..16).map(|i| fast_spec(&format!("d-{i}"))).collect();
    let service = YieldService::new();
    let mut handle = service.sweep_with_workers(specs, 5, 4);
    let _ = handle.next();
    drop(handle); // joins workers via Drop
}

#[test]
fn lru_cache_stays_bounded_under_100_scenario_stress() {
    let capacity = 4;
    let service = YieldService::with_config(ServiceConfig {
        cache: CacheConfig {
            curve_capacity: capacity,
            design_capacity: 2,
        },
        sweep_workers: 4,
    });
    // 100 scenarios over 25 distinct corners: far more curves than the
    // cache may hold.
    let specs: Vec<ScenarioSpec> = (0..100)
        .map(|i| {
            let mut spec = fast_spec(&format!("stress-{i}"));
            spec.corner = CornerSpec::Custom {
                pm: 0.05 + 0.01 * f64::from(i % 25),
                p_rs: 0.2,
                p_rm: 1.0,
            };
            spec
        })
        .collect();
    let reference = specs[3].clone();
    let mut delivered = 0;
    for item in service.sweep_with_workers(specs, 1, 4) {
        item.report.expect("stress scenario evaluates");
        delivered += 1;
        let stats = service.pipeline().cache_stats();
        assert!(
            stats.curves <= capacity,
            "curve cache exceeded capacity mid-sweep: {stats:?}"
        );
        assert!(stats.designs <= 2);
    }
    assert_eq!(delivered, 100);
    // Evictions must not have corrupted answers: a stressed-cache result
    // equals a fresh pipeline's.
    let seed = cnfet_sim::engine::split_seed(1, 3);
    assert_eq!(
        service.evaluate(&reference, seed).unwrap(),
        Pipeline::new().evaluate(&reference, seed).unwrap()
    );
}

#[test]
fn bad_scenarios_stream_structured_errors_and_a_failure_count() {
    let mut bad = fast_spec("bad");
    bad.yield_target = 2.0;
    let grid = ScenarioGrid {
        scenarios: vec![fast_spec("ok-0"), bad, fast_spec("ok-2")],
    };
    let service = YieldService::new();
    let responses = service.handle(&YieldRequest::sweep("mixed", grid, 1, Some(2)));
    assert_eq!(responses.len(), 4);
    assert!(!responses[0].is_error());
    assert!(responses[1].is_error(), "bad scenario yields an error");
    assert!(!responses[2].is_error(), "later scenarios still run");
    match &responses[3].body {
        ResponseBody::SweepDone { failed, total } => {
            assert_eq!((*total, *failed), (3, 1));
        }
        other => panic!("expected sweep_done, got {other:?}"),
    }
}

#[test]
fn describe_names_the_capabilities() {
    let service = YieldService::new();
    let responses = service.handle(&YieldRequest::describe("d"));
    assert_eq!(responses.len(), 1);
    let ResponseBody::Describe(info) = &responses[0].body else {
        panic!("expected describe body");
    };
    assert_eq!(info.schemas, vec![1]);
    assert!(info.backends.iter().any(|b| b == "monte-carlo"));
    assert!(info.scenario_keys.iter().any(|k| k == "yield_target"));
    // And the full response survives the wire.
    let line = responses[0].to_json().to_string_compact();
    let back = YieldResponse::from_json(&cnfet_pipeline::Json::parse(&line).unwrap()).unwrap();
    assert_eq!(back, responses[0]);
}

#[test]
fn wire_session_round_trips_every_kind() {
    // One daemon-style session: evaluate + sweep + describe, all parsed
    // back from their wire bytes.
    let service = YieldService::new();
    let grid = ScenarioGrid {
        scenarios: vec![fast_spec("w-0"), fast_spec("w-1")],
    };
    let requests = [
        YieldRequest::evaluate("a", fast_spec("w"), 3),
        YieldRequest::sweep("b", grid, 3, Some(1)),
        YieldRequest::describe("c"),
    ];
    let mut ids = Vec::new();
    for request in &requests {
        let line = request.to_json().to_string_compact();
        let mut emit = |response: YieldResponse| {
            let wire_line = response.to_json().to_string_compact();
            let parsed =
                YieldResponse::from_json(&cnfet_pipeline::Json::parse(&wire_line).unwrap())
                    .unwrap();
            assert_eq!(parsed, response);
            assert!(!response.is_error(), "unexpected error: {wire_line}");
            ids.push(response.id.clone());
        };
        service.handle_line(&line, &mut emit);
    }
    assert_eq!(ids, ["a", "b", "b", "b", "c"], "ids stay correlated");
    // And a parsed request equals the original (request round-trip).
    let again = YieldRequest::from_json(
        &cnfet_pipeline::Json::parse(&requests[0].to_json().to_string_compact()).unwrap(),
    )
    .unwrap();
    assert_eq!(again.body, requests[0].body);
    assert!(matches!(again.body, RequestBody::Evaluate { seed: 3, .. }));
}
