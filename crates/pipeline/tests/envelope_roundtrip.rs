//! Property tests: every envelope the service can emit or accept must
//! survive JSON serialize → parse unchanged, and foreign schema versions
//! must be rejected with a structured `unsupported_schema` error.

use cnfet_pipeline::{
    BackendSpec, CoOptReport, CoOptSpec, CorrelationSpec, ErrorCode, Json, LibrarySpec,
    McBackendReport, ParetoFront, ParetoPoint, ResponseBody, RungReport, ScenarioGrid,
    ScenarioReport, ScenarioSpec, SearchAxis, SearchReport, SearcherSpec, ServiceError,
    ServiceInfo, YieldRequest, YieldResponse, YieldService, SCHEMA_VERSION,
};
use proptest::prelude::*;

/// Build a string from palette indices; the palette exercises JSON
/// escaping (quotes, backslashes, control and non-ASCII characters).
fn text(indices: &[usize]) -> String {
    const PALETTE: [char; 16] = [
        'a', 'b', 'z', '0', '9', '_', '-', '/', ' ', '"', '\\', '\n', '\t', 'é', '≤', '台',
    ];
    indices.iter().map(|i| PALETTE[i % PALETTE.len()]).collect()
}

fn error_code(variant: usize, key: &[usize], suggest: bool, n: u64) -> ErrorCode {
    match variant % 8 {
        0 => ErrorCode::BadRequest,
        1 => ErrorCode::UnsupportedSchema { requested: n },
        2 => ErrorCode::BadSpec { field: text(key) },
        3 => ErrorCode::UnknownKey {
            key: text(key),
            suggestion: suggest.then(|| "yield_target".to_string()),
        },
        4 => ErrorCode::UnsupportedBody { body: text(key) },
        5 => ErrorCode::Unconverged,
        6 => ErrorCode::Overloaded { shard: n },
        _ => ErrorCode::Internal,
    }
}

fn searcher_spec(searcher: usize) -> SearcherSpec {
    match searcher % 4 {
        0 => SearcherSpec::GridScan,
        1 => SearcherSpec::CoordinateDescent {
            restarts: 4,
            max_sweeps: 7,
        },
        2 => SearcherSpec::Genetic {
            population: 16,
            generations: 5,
            tournament_k: 3,
            mutation_rate: 0.25,
        },
        // The parser rejects a halving inside a halving, so the inner
        // strategy only draws from the three flat forms.
        _ => SearcherSpec::Halving {
            inner: Box::new(searcher_spec((searcher / 4) % 3)),
            rungs: 3,
            eta: 2,
        },
    }
}

fn coopt_spec(
    name: &[usize],
    node: f64,
    target: f64,
    backend: usize,
    searcher: usize,
) -> CoOptSpec {
    CoOptSpec {
        name: text(name),
        base: spec(name, node, target, backend),
        axes: vec![
            SearchAxis {
                key: "l_cnt_um".into(),
                values: vec![Json::Num(50.0), Json::Num(200.0), Json::Num(400.0)],
            },
            SearchAxis {
                key: "grid".into(),
                values: vec![Json::Str("dual".into()), Json::Str("single".into())],
            },
        ],
        objective: cnfet_core::objective::CostWeights::default(),
        searcher: searcher_spec(searcher),
    }
}

fn pareto_point(name: &[usize], w_min: f64, demand: f64) -> ParetoPoint {
    ParetoPoint {
        scenario: text(name),
        choice: vec![1, 0],
        demand,
        cost: w_min / 155.0,
        w_min_nm: w_min,
        upsizing_penalty: 0.065,
        p_req: 1.1e-6,
        p_at_w_min: 9.7e-7,
        relaxation: 360.0,
    }
}

fn spec(name: &[usize], node: f64, target: f64, backend: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(text(name));
    spec.node_nm = node;
    spec.yield_target = target;
    spec.library = if backend.is_multiple_of(2) {
        LibrarySpec::Nangate45
    } else {
        LibrarySpec::Commercial65
    };
    spec.correlation = match backend % 3 {
        0 => CorrelationSpec::None,
        1 => CorrelationSpec::Growth,
        _ => CorrelationSpec::GrowthAlignedLayout,
    };
    spec.backend = match backend % 4 {
        0 => BackendSpec::GaussianSum,
        1 => BackendSpec::Convolution { step: 0.1 },
        _ => cnfet_pipeline::mc_backend_defaults(),
    };
    spec
}

fn report(name: &[usize], seed: u64, w_min: f64, with_mc: bool) -> ScenarioReport {
    ScenarioReport {
        name: text(name),
        seed,
        library: "nangate45".into(),
        node_nm: 45.0,
        corner: "pm=33%, pRs=30%".into(),
        correlation: "none".into(),
        backend: "convolution".into(),
        yield_target: 0.9,
        m_transistors: 1e8,
        m_min: 33e6,
        m_r_min: 360.25,
        relaxation: 1.0,
        p_req: 3.4e-9,
        w_min_nm: w_min,
        p_at_w_min: 2.9e-9,
        upsizing_penalty: 0.115,
        unaligned_p_rf_mc: with_mc.then_some(4.5e-7),
        mc: with_mc.then_some(McBackendReport {
            trials: seed % 1_000_000 + 1,
            widths_evaluated: 17,
            ci_lo: 1.25e-9,
            ci_hi: 4.5e-9,
            ci_level: 0.95,
            converged: seed.is_multiple_of(2),
        }),
        fault: None,
    }
}

proptest! {
    #[test]
    fn requests_round_trip(
        id in prop::collection::vec(0usize..16, 0..12),
        name in prop::collection::vec(0usize..16, 0..10),
        node in 10.0f64..100.0,
        target in 0.5f64..0.99,
        backend in 0usize..12,
        seed in 0u64..u64::MAX, // full range: split seeds exceed 2^53
        workers in 1usize..16,
        kind in 0usize..4,
    ) {
        let s = spec(&name, node, target, backend);
        let request = match kind {
            0 => YieldRequest::evaluate(text(&id), s, seed),
            1 => YieldRequest::sweep(
                text(&id),
                ScenarioGrid { scenarios: vec![s] },
                seed,
                (workers % 2 == 0).then_some(workers),
            ),
            2 => YieldRequest::co_opt(
                text(&id),
                coopt_spec(&name, node, target, backend, workers),
                seed,
                (workers % 3 == 0).then_some(workers),
            ),
            _ => YieldRequest::describe(text(&id)),
        };
        let wire = request.to_json().to_string_compact();
        let back = YieldRequest::from_json(&Json::parse(&wire).unwrap())
            .map_err(|e| TestCaseError::fail(format!("{e} for {wire}")))?;
        prop_assert_eq!(back, request);
    }

    #[test]
    fn responses_round_trip_including_every_error_code(
        id in prop::collection::vec(0usize..16, 0..12),
        name in prop::collection::vec(0usize..16, 0..10),
        message in prop::collection::vec(0usize..16, 0..24),
        variant in 0usize..8,
        suggest in proptest::bool::ANY,
        n in 0u64..100,
        seed in 0u64..u64::MAX,
        w_min in 20.0f64..400.0,
        kind in 0usize..6,
        with_mc in proptest::bool::ANY,
    ) {
        let body = match kind {
            0 => ResponseBody::Report(report(&name, seed, w_min, with_mc)),
            1 => ResponseBody::SweepReport {
                index: n,
                total: n + 3,
                report: report(&name, seed, w_min, with_mc),
            },
            2 => ResponseBody::SweepDone { total: n + 3, failed: n % 4 },
            3 => ResponseBody::Describe(if with_mc {
                ServiceInfo::with_co_opt()
            } else {
                ServiceInfo::default()
            }),
            4 => ResponseBody::CoOpt(CoOptReport {
                name: text(&name),
                searcher: if with_mc { "halving+genetic" } else { "grid" }.into(),
                seed,
                candidates: n + 6,
                evaluations: n + 1,
                search: with_mc.then(|| SearchReport {
                    generations: n + 2,
                    coarse_evaluations: n * 7,
                    final_evaluations: n + 1,
                    rungs: vec![
                        RungReport {
                            relax: 4.0,
                            evaluations: n * 5,
                            promoted: n + 4,
                        },
                        RungReport {
                            relax: 1.0,
                            evaluations: n + 1,
                            promoted: 0,
                        },
                    ],
                }),
                best: pareto_point(&name, w_min, 0.5),
                front: ParetoFront::from_points(vec![
                    pareto_point(&name, w_min, 0.5),
                    pareto_point(&message, w_min + 30.0, 0.25),
                ]),
            }),
            _ => ResponseBody::Error(ServiceError {
                code: error_code(variant, &name, suggest, n),
                message: text(&message),
            }),
        };
        let response = YieldResponse::new(text(&id), body);
        let wire = response.to_json().to_string_compact();
        prop_assert!(!wire.contains('\n'), "JSON-lines form must be one line");
        let back = YieldResponse::from_json(&Json::parse(&wire).unwrap())
            .map_err(|e| TestCaseError::fail(format!("{e} for {wire}")))?;
        prop_assert_eq!(back, response);
    }

    #[test]
    fn foreign_schemas_are_rejected_with_unsupported_schema(
        schema in 0u64..100,
        kind in 0usize..3,
    ) {
        prop_assume!(schema != SCHEMA_VERSION);
        let mut request = match kind {
            0 => YieldRequest::evaluate("s", ScenarioSpec::baseline("b"), 1),
            1 => YieldRequest::sweep(
                "s",
                ScenarioGrid { scenarios: vec![ScenarioSpec::baseline("b")] },
                1,
                None,
            ),
            _ => YieldRequest::describe("s"),
        };
        request.schema = schema;
        let responses = YieldService::new().handle(&request);
        prop_assert_eq!(responses.len(), 1);
        match &responses[0].body {
            ResponseBody::Error(e) => {
                prop_assert_eq!(&e.code, &ErrorCode::UnsupportedSchema { requested: schema });
            }
            other => return Err(TestCaseError::fail(format!("expected error, got {other:?}"))),
        }
    }
}

#[test]
fn schema_2_is_rejected_on_the_wire_too() {
    // The literal acceptance case: a `schema: 2` JSON-lines request.
    let service = YieldService::new();
    let mut responses = Vec::new();
    service.handle_line(
        r#"{ "schema": 2, "id": "future", "body": "describe" }"#,
        &mut |r| responses.push(r),
    );
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].id, "future");
    let wire = responses[0].to_json().to_string_compact();
    assert!(wire.contains("\"unsupported_schema\""), "wire: {wire}");
    match &responses[0].body {
        ResponseBody::Error(e) => {
            assert_eq!(e.code, ErrorCode::UnsupportedSchema { requested: 2 });
        }
        other => panic!("expected error, got {other:?}"),
    }
}
