//! Monte-Carlo vs. analytic parity: the third witness.
//!
//! For every corner × correlation × node cell, the scenario evaluated with
//! the `monte-carlo` back-end must agree with the exact-convolution
//! back-end within the confidence interval it reports — the same
//! analytic-vs-simulation cross-validation loop Hills et al. use to trust
//! their co-optimization results.

use cnfet_core::failure::FailureModel;
use cnfet_pipeline::{BackendSpec, CornerSpec, CorrelationSpec, Pipeline, RhoSpec, ScenarioSpec};
use cnt_stats::renewal::CountModel;

// 99.9 % intervals: 12 strict bracket assertions at 95 % would fail on
// coverage alone about half the time; at 99.9 % the grid is expected to
// bracket everywhere (and the fixed seed keeps the outcome reproducible).
const MC_BACKEND: BackendSpec = BackendSpec::MonteCarlo {
    rel_ci: 0.08,
    max_trials: 400_000,
    batch: 1_000,
    ci_level: 0.999,
};

fn spec(
    name: String,
    corner: CornerSpec,
    correlation: CorrelationSpec,
    node: f64,
    backend: BackendSpec,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(name);
    spec.corner = corner;
    spec.correlation = correlation;
    spec.node_nm = node;
    spec.backend = backend;
    spec.fast_design = true;
    spec.rho = RhoSpec::Paper;
    spec
}

#[test]
fn mc_backend_agrees_with_convolution_across_the_grid() {
    let pipeline = Pipeline::new();
    let corners = [CornerSpec::Aggressive, CornerSpec::IdealRemoval];
    let correlations = [
        CorrelationSpec::None,
        CorrelationSpec::Growth,
        CorrelationSpec::GrowthAlignedLayout,
    ];
    let nodes = [45.0, 32.0];

    for (ci, corner) in corners.iter().enumerate() {
        // One exact model per corner: the reference the MC CI must cover.
        let exact = FailureModel::paper_default(corner.corner().unwrap())
            .unwrap()
            .with_backend(CountModel::Convolution { step: 0.05 });
        for correlation in correlations {
            for node in nodes {
                let cell = format!("{}/{}/{node}", ci, correlation.name());
                let mc_spec = spec(cell.clone(), *corner, correlation, node, MC_BACKEND);
                let conv_spec = spec(
                    format!("{cell}/conv"),
                    *corner,
                    correlation,
                    node,
                    BackendSpec::Convolution { step: 0.05 },
                );
                let mc = pipeline.evaluate(&mc_spec, 20_100_613).unwrap();
                let conv = pipeline.evaluate(&conv_spec, 20_100_613).unwrap();
                let provenance = mc.mc.expect("monte-carlo provenance recorded");

                assert!(
                    provenance.converged,
                    "{cell}: MC did not converge ({} trials)",
                    provenance.trials
                );
                assert!(provenance.trials > 0 && provenance.widths_evaluated > 0);

                // The exact pF at the MC-solved width must sit inside the
                // reported confidence interval (the estimate itself is the
                // interval's center by construction).
                let reference = exact.p_failure(mc.w_min_nm).unwrap();
                assert!(
                    provenance.ci_lo <= reference && reference <= provenance.ci_hi,
                    "{cell}: conv pF({:.2}) = {reference:.4e} outside MC CI \
                     [{:.4e}, {:.4e}]",
                    mc.w_min_nm,
                    provenance.ci_lo,
                    provenance.ci_hi
                );

                // And the two back-ends must solve to nearby thresholds:
                // pF is steep in W, so an 8 % probability CI is ~1 % in W.
                let rel_w = (mc.w_min_nm - conv.w_min_nm).abs() / conv.w_min_nm;
                assert!(
                    rel_w < 0.03,
                    "{cell}: W_min mc {:.2} vs conv {:.2} ({:.1} % apart)",
                    mc.w_min_nm,
                    conv.w_min_nm,
                    100.0 * rel_w
                );
                assert_eq!(mc.backend, "monte-carlo");
                assert!(conv.mc.is_none(), "analytic runs carry no MC provenance");
            }
        }
    }
}

#[test]
fn zero_pf_corner_is_exact_and_instant() {
    // All-semiconducting: pf = 0, so the stratified estimator is
    // variance-free and the MC backend solves the same W_min as the
    // convolution backend to interpolation accuracy.
    let pipeline = Pipeline::new();
    let mc = pipeline
        .evaluate(
            &spec(
                "semi/mc".into(),
                CornerSpec::AllSemiconducting,
                CorrelationSpec::None,
                45.0,
                MC_BACKEND,
            ),
            1,
        )
        .unwrap();
    let conv = pipeline
        .evaluate(
            &spec(
                "semi/conv".into(),
                CornerSpec::AllSemiconducting,
                CorrelationSpec::None,
                45.0,
                BackendSpec::Convolution { step: 0.05 },
            ),
            1,
        )
        .unwrap();
    let provenance = mc.mc.unwrap();
    assert!(provenance.converged);
    // Every width converges in exactly one batch.
    assert_eq!(
        provenance.trials,
        provenance.widths_evaluated * 1_000,
        "pf = 0 must take one batch per width"
    );
    assert!(
        (mc.w_min_nm - conv.w_min_nm).abs() / conv.w_min_nm < 0.03,
        "mc {} vs conv {}",
        mc.w_min_nm,
        conv.w_min_nm
    );
}

#[test]
fn mc_backend_is_deterministic_per_seed() {
    let pipeline = Pipeline::new();
    let s = spec(
        "det".into(),
        CornerSpec::Aggressive,
        CorrelationSpec::GrowthAlignedLayout,
        45.0,
        MC_BACKEND,
    );
    let a = pipeline.evaluate(&s, 77).unwrap();
    let b = pipeline.evaluate(&s, 77).unwrap();
    assert_eq!(a, b, "same spec + seed must be bit-identical");
    let c = pipeline.evaluate(&s, 78).unwrap();
    assert_ne!(
        a.p_at_w_min, c.p_at_w_min,
        "a different seed must actually resample"
    );
}
