//! Integration probe: Table 2 geometry statistics for both libraries.

use cnfet_celllib::commercial65::commercial65_like;
use cnfet_celllib::nangate45::nangate45_like;
use cnfet_layout::{align_library, AlignmentOptions, GridPolicy};

#[test]
fn table2_shapes() {
    let n45 = nangate45_like();
    let c65 = commercial65_like();
    let single = AlignmentOptions::default();
    let dual = AlignmentOptions {
        policy: GridPolicy::Dual,
        ..AlignmentOptions::default()
    };

    let a45 = align_library(&n45, &single).unwrap();
    println!(
        "Nangate45 single: {} penalized / {} cells, min {:?} max {:?}",
        a45.penalized().len(),
        a45.total_cells(),
        a45.min_penalty().map(|p| format!("{:.1}%", p * 100.0)),
        a45.max_penalty().map(|p| format!("{:.1}%", p * 100.0))
    );
    for c in a45.penalized() {
        println!("  {} : {:.1}%", c.cell_name, c.penalty() * 100.0);
    }

    let a65 = align_library(&c65, &single).unwrap();
    println!(
        "C65 single: {} penalized / {} ({:.1}%), min {:?} max {:?}",
        a65.penalized().len(),
        a65.total_cells(),
        a65.penalized_fraction() * 100.0,
        a65.min_penalty().map(|p| format!("{:.1}%", p * 100.0)),
        a65.max_penalty().map(|p| format!("{:.1}%", p * 100.0))
    );

    let a65d = align_library(&c65, &dual).unwrap();
    println!("C65 dual: {} penalized", a65d.penalized().len());

    // Shape assertions (paper: ~20% penalized at 10–70%; dual-grid zero).
    assert!((0.15..0.25).contains(&a65.penalized_fraction()));
    assert_eq!(a65d.penalized().len(), 0);
}
