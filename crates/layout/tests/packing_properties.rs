//! Property tests for the alignment packer and row placement.

use cnfet_celllib::cell::{Cell, DriveStrength, LayoutStyle, TechParams};
use cnfet_celllib::CellFamily;
use cnfet_layout::{align_cell, place_cells, AlignmentOptions, GridPolicy, PlacementOptions};
use proptest::prelude::*;

fn families() -> Vec<CellFamily> {
    vec![
        CellFamily::Inv,
        CellFamily::Nand(2),
        CellFamily::Nand(4),
        CellFamily::Aoi(&[2, 2]),
        CellFamily::Aoi(&[2, 2, 2]),
        CellFamily::Oai(&[2, 2, 2]),
        CellFamily::Mux(4),
        CellFamily::FullAdder,
        CellFamily::Dff {
            reset: true,
            set: false,
            scan: true,
        },
        CellFamily::Latch { active_high: false },
        CellFamily::ClkGate,
    ]
}

proptest! {
    #[test]
    fn alignment_cost_is_bounded_and_consistent(
        fam_idx in 0usize..11,
        drive_pow in 0u32..3,
        style_compact in proptest::bool::ANY,
        gap in 0.0f64..200.0,
    ) {
        let tech = TechParams::nangate45();
        let family = families()[fam_idx];
        let style = if style_compact { LayoutStyle::Compact } else { LayoutStyle::Relaxed };
        let drive = DriveStrength::new(1 << drive_pow).unwrap();
        let cell = Cell::synthesize(family, drive, &tech, style).unwrap();

        let single = align_cell(&cell, &tech, &AlignmentOptions {
            strip_x_gap: gap,
            ..AlignmentOptions::default()
        }).unwrap();
        let dual = align_cell(&cell, &tech, &AlignmentOptions {
            policy: GridPolicy::Dual,
            strip_x_gap: gap,
            ..AlignmentOptions::default()
        }).unwrap();

        // Never shrinks; dual dominates single; strips are preserved.
        prop_assert!(single.new_width >= cell.width() - 1e-9);
        prop_assert!(dual.new_width <= single.new_width + 1e-9);
        prop_assert_eq!(single.new_strips.len(), cell.strips().len());
        // Penalty stays bounded (packing at most duplicates diffusion).
        prop_assert!(single.penalty() < 1.5, "penalty {}", single.penalty());
        // Wider inter-strip gaps can only increase the packed width.
        let tighter = align_cell(&cell, &tech, &AlignmentOptions {
            strip_x_gap: gap / 2.0,
            ..AlignmentOptions::default()
        }).unwrap();
        prop_assert!(tighter.new_width <= single.new_width + 1e-9);
    }

    #[test]
    fn placement_conserves_cells_and_respects_budget(
        n_inv in 1usize..80,
        n_dff in 0usize..30,
        util in 0.3f64..1.0,
    ) {
        let tech = TechParams::nangate45();
        let inv = Cell::synthesize(CellFamily::Inv, DriveStrength::X1, &tech, LayoutStyle::Relaxed)
            .unwrap();
        let dff = Cell::synthesize(
            CellFamily::Dff { reset: false, set: false, scan: false },
            DriveStrength::X1,
            &tech,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let mut instances: Vec<&Cell> = Vec::new();
        instances.extend(std::iter::repeat_n(&inv, n_inv));
        instances.extend(std::iter::repeat_n(&dff, n_dff));

        let opts = PlacementOptions { row_width: 30_000.0, utilization: util };
        let placed = place_cells(&instances, opts).unwrap();

        // Every instance placed exactly once.
        let placed_count: usize = placed.rows().iter().map(|r| r.cells.len()).sum();
        prop_assert_eq!(placed_count, instances.len());
        // Rows never exceed the utilization budget by more than one cell.
        let max_cell = inv.width().max(dff.width());
        for row in placed.rows() {
            prop_assert!(row.occupied <= 30_000.0 * util + max_cell + 1e-9);
        }
        // Transistor accounting matches.
        let expect_t = n_inv * inv.transistors().len() + n_dff * dff.transistors().len();
        prop_assert_eq!(placed.transistor_count(), expect_t);
    }
}
