//! The aligned-active transform: move critical strips onto global grid
//! rows, re-pack x collisions, and price the resulting cell widening.

use crate::{LayoutError, Result};
use cnfet_celllib::cell::{ActiveStrip, Cell, TechParams};
use cnfet_celllib::CellLibrary;
use cnfet_device::FetType;
use cnt_growth::Rect;

/// How many global grid rows each polarity gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridPolicy {
    /// One aligned active region per polarity: maximal correlation benefit,
    /// maximal alignment cost (paper Table 2, "one aligned active region").
    #[default]
    Single,
    /// Two aligned active regions per polarity: halves the correlation
    /// benefit (`M_Rmin / 2`) but eliminates the area penalty (paper
    /// Sec. 3.3, "two aligned active regions").
    Dual,
}

impl GridPolicy {
    /// Number of grid rows per polarity.
    pub fn rows(&self) -> usize {
        match self {
            GridPolicy::Single => 1,
            GridPolicy::Dual => 2,
        }
    }

    /// The factor by which the row-correlation benefit shrinks relative to
    /// the single-grid case (paper: 2× for two grids).
    pub fn benefit_division(&self) -> f64 {
        self.rows() as f64
    }
}

/// Options controlling the alignment transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentOptions {
    /// Grid policy (one or two rows per polarity).
    pub policy: GridPolicy,
    /// Only strips containing a transistor with width `< critical_width`
    /// are forced onto the grid; `None` aligns every strip (the paper notes
    /// aligning non-critical regions is "still beneficial").
    pub critical_width: Option<f64>,
    /// Minimum x gap between re-packed strips (diffusion break), nm.
    pub strip_x_gap: f64,
}

impl Default for AlignmentOptions {
    fn default() -> Self {
        Self {
            policy: GridPolicy::Single,
            critical_width: None,
            strip_x_gap: 40.0,
        }
    }
}

/// Result of aligning one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAlignment {
    /// Cell name.
    pub cell_name: String,
    /// Pre-transform cell width (nm).
    pub old_width: f64,
    /// Post-transform cell width (nm).
    pub new_width: f64,
    /// Strips after the transform (cell-local coordinates).
    pub new_strips: Vec<ActiveStrip>,
    /// Number of strips that changed position.
    pub moved_strips: usize,
}

impl CellAlignment {
    /// Relative width/area penalty (cell height is fixed, so width increase
    /// is area increase): `new/old − 1`, ≥ 0.
    pub fn penalty(&self) -> f64 {
        (self.new_width / self.old_width - 1.0).max(0.0)
    }

    /// Whether the cell had to grow.
    pub fn widened(&self) -> bool {
        self.new_width > self.old_width + 1e-9
    }
}

/// Whether a strip is critical under the options (contains a device below
/// the critical width, or everything is critical when no threshold is set).
fn strip_is_critical(cell: &Cell, strip_idx: usize, options: &AlignmentOptions) -> bool {
    match options.critical_width {
        None => true,
        Some(w_min) => cell
            .transistors()
            .iter()
            .any(|t| t.strip == strip_idx && t.width < w_min),
    }
}

/// Align one cell's critical strips onto the grid rows of its polarity.
///
/// Strips assigned to the same grid row must not overlap in x; colliding
/// strips are re-packed left-to-right with [`AlignmentOptions::strip_x_gap`]
/// between them, and the cell widens if the packing exceeds its old width.
/// Strip-to-row assignment is chosen (exhaustively — cells have ≤ 4 strips
/// per polarity) to minimize the resulting width.
///
/// # Errors
///
/// Returns [`LayoutError::InvalidParameter`] for a non-positive
/// `strip_x_gap`; geometry errors indicate inconsistent inputs.
pub fn align_cell(
    cell: &Cell,
    tech: &TechParams,
    options: &AlignmentOptions,
) -> Result<CellAlignment> {
    if !(options.strip_x_gap.is_finite() && options.strip_x_gap >= 0.0) {
        return Err(LayoutError::InvalidParameter {
            name: "strip_x_gap",
            value: options.strip_x_gap,
            constraint: "must be finite and >= 0",
        });
    }

    let mut new_strips: Vec<ActiveStrip> = Vec::with_capacity(cell.strips().len());
    let mut required_width = cell.width();
    let mut moved = 0usize;

    for fet_type in [FetType::NType, FetType::PType] {
        let band_lo = match fet_type {
            FetType::NType => tech.n_band.0,
            FetType::PType => tech.p_band.0,
        };
        // Indices of this polarity's strips in the cell's strip list.
        let indices: Vec<usize> = cell
            .strips()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.fet_type == fet_type)
            .map(|(i, _)| i)
            .collect();
        if indices.is_empty() {
            continue;
        }
        let critical: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| strip_is_critical(cell, i, options))
            .collect();
        // Non-critical strips keep their position.
        for &i in indices.iter().filter(|i| !critical.contains(i)) {
            new_strips.push(cell.strips()[i]);
        }
        if critical.is_empty() {
            continue;
        }

        let rows = options.policy.rows();
        // Enumerate assignments of critical strips to grid rows (k^n, with
        // n ≤ 4 in practice) and keep the one needing the least width.
        let n = critical.len();
        let mut best: Option<(f64, Vec<usize>)> = None;
        let assignments = rows.pow(n as u32);
        for code in 0..assignments {
            let mut rowof = vec![0usize; n];
            let mut c = code;
            for r in rowof.iter_mut() {
                *r = c % rows;
                c /= rows;
            }
            // Width needed by each row under this assignment.
            let mut width_needed: f64 = 0.0;
            for row in 0..rows {
                let members: Vec<usize> = (0..n).filter(|&k| rowof[k] == row).collect();
                if members.is_empty() {
                    continue;
                }
                // If the members already avoid x-overlap, they can keep
                // their x positions: the row just needs the rightmost edge.
                let mut overlap = false;
                for a in 0..members.len() {
                    for b in a + 1..members.len() {
                        let ra = cell.strips()[critical[members[a]]].rect;
                        let rb = cell.strips()[critical[members[b]]].rect;
                        if ra.x0() < rb.x1() && rb.x0() < ra.x1() {
                            overlap = true;
                        }
                    }
                }
                let row_width = if overlap {
                    // Re-pack the colliding strips side by side. Columns the
                    // strips used to *share* vertically must be duplicated,
                    // so the cell grows by (packed span − union span); all
                    // non-diffusion width (routing columns, margins) is
                    // preserved.
                    let total_extent: f64 = members
                        .iter()
                        .map(|&k| cell.strips()[critical[k]].rect.width())
                        .sum();
                    let packed = total_extent + (members.len() - 1) as f64 * options.strip_x_gap;
                    let union_lo = members
                        .iter()
                        .map(|&k| cell.strips()[critical[k]].rect.x0())
                        .fold(f64::INFINITY, f64::min);
                    let union_hi = members
                        .iter()
                        .map(|&k| cell.strips()[critical[k]].rect.x1())
                        .fold(f64::NEG_INFINITY, f64::max);
                    cell.width() + (packed - (union_hi - union_lo)).max(0.0)
                } else {
                    let rightmost = members
                        .iter()
                        .map(|&k| cell.strips()[critical[k]].rect.x1())
                        .fold(0.0_f64, f64::max);
                    rightmost + tech.edge_margin
                };
                width_needed = width_needed.max(row_width);
            }
            if best.as_ref().is_none_or(|(w, _)| width_needed < *w) {
                best = Some((width_needed, rowof));
            }
        }
        let (polarity_width, rowof) = best.expect("at least one assignment exists");
        required_width = required_width.max(polarity_width);

        // Materialize the new strip rectangles: pack each row left-to-right
        // at the grid y positions (row 0 at band_lo; row 1 stacked above).
        for row in 0..rows {
            let members: Vec<usize> = (0..n).filter(|&k| rowof[k] == row).collect();
            let mut cursor = tech.edge_margin;
            for &k in &members {
                let old = cell.strips()[critical[k]];
                let height = old.rect.height();
                let y = band_lo + row as f64 * (tech.finger_cap_multi + tech.strip_gap);
                let rect = Rect::new(cursor, y, old.rect.width(), height)?;
                if (rect.x0() - old.rect.x0()).abs() > 1e-9
                    || (rect.y0() - old.rect.y0()).abs() > 1e-9
                {
                    moved += 1;
                }
                new_strips.push(ActiveStrip {
                    fet_type,
                    rect,
                    band: row as u8,
                });
                cursor = rect.x1() + options.strip_x_gap;
            }
        }
    }

    Ok(CellAlignment {
        cell_name: cell.name().to_string(),
        old_width: cell.width(),
        new_width: required_width,
        new_strips,
        moved_strips: moved,
    })
}

/// Aggregate alignment results for a whole library (one Table 2 column).
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryAlignment {
    /// Library name.
    pub library: String,
    /// Grid policy used.
    pub policy: GridPolicy,
    /// Per-cell outcomes.
    pub cells: Vec<CellAlignment>,
}

impl LibraryAlignment {
    /// Number of cells in the library.
    pub fn total_cells(&self) -> usize {
        self.cells.len()
    }

    /// Cells that had to widen.
    pub fn penalized(&self) -> Vec<&CellAlignment> {
        self.cells.iter().filter(|c| c.widened()).collect()
    }

    /// Fraction of cells with an area penalty.
    pub fn penalized_fraction(&self) -> f64 {
        self.penalized().len() as f64 / self.total_cells() as f64
    }

    /// Smallest non-zero penalty, if any cell was penalized.
    pub fn min_penalty(&self) -> Option<f64> {
        self.penalized()
            .iter()
            .map(|c| c.penalty())
            .min_by(|a, b| a.partial_cmp(b).expect("penalties are finite"))
    }

    /// Largest penalty, if any cell was penalized.
    pub fn max_penalty(&self) -> Option<f64> {
        self.penalized()
            .iter()
            .map(|c| c.penalty())
            .max_by(|a, b| a.partial_cmp(b).expect("penalties are finite"))
    }

    /// Penalty of a specific cell.
    pub fn penalty_of(&self, cell_name: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.cell_name == cell_name)
            .map(CellAlignment::penalty)
    }
}

/// Align every cell of a library (paper Sec. 3.2 applied library-wide).
///
/// # Errors
///
/// Propagates [`align_cell`] errors.
pub fn align_library(lib: &CellLibrary, options: &AlignmentOptions) -> Result<LibraryAlignment> {
    let mut cells = Vec::with_capacity(lib.cells().len());
    for cell in lib.cells() {
        cells.push(align_cell(cell, lib.tech(), options)?);
    }
    Ok(LibraryAlignment {
        library: lib.name().to_string(),
        policy: options.policy,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_celllib::cell::{DriveStrength, LayoutStyle};
    use cnfet_celllib::nangate45::nangate45_like;
    use cnfet_celllib::CellFamily;

    fn opts_single() -> AlignmentOptions {
        AlignmentOptions::default()
    }

    fn opts_dual() -> AlignmentOptions {
        AlignmentOptions {
            policy: GridPolicy::Dual,
            ..AlignmentOptions::default()
        }
    }

    #[test]
    fn single_strip_cells_are_free() {
        let tech = TechParams::nangate45();
        let inv = Cell::synthesize(
            CellFamily::Inv,
            DriveStrength::X1,
            &tech,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let a = align_cell(&inv, &tech, &opts_single()).unwrap();
        assert!(!a.widened());
        assert_eq!(a.penalty(), 0.0);
    }

    #[test]
    fn aoi222_pays_under_single_grid_but_not_dual() {
        let tech = TechParams::nangate45();
        let aoi = Cell::synthesize(
            CellFamily::Aoi(&[2, 2, 2]),
            DriveStrength::X1,
            &tech,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let single = align_cell(&aoi, &tech, &opts_single()).unwrap();
        assert!(single.widened(), "AOI222_X1 must widen under one grid");
        // Paper Fig 3.2: ~9 % width increase.
        let p = single.penalty();
        assert!((0.04..0.16).contains(&p), "AOI222_X1 penalty {p}");

        let dual = align_cell(&aoi, &tech, &opts_dual()).unwrap();
        assert_eq!(dual.penalty(), 0.0, "two grids absorb the overlap");
    }

    #[test]
    fn relaxed_flop_is_free_under_single_grid() {
        let tech = TechParams::nangate45();
        let dff = Cell::synthesize(
            CellFamily::Dff {
                reset: false,
                set: false,
                scan: false,
            },
            DriveStrength::X1,
            &tech,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let a = align_cell(&dff, &tech, &opts_single()).unwrap();
        // Strips are x-disjoint: they land on one row side by side.
        assert_eq!(a.penalty(), 0.0, "penalty {}", a.penalty());
    }

    #[test]
    fn nangate_library_matches_paper_counts() {
        let lib = nangate45_like();
        let aligned = align_library(&lib, &opts_single()).unwrap();
        let penalized: Vec<&str> = aligned
            .penalized()
            .iter()
            .map(|c| c.cell_name.as_str())
            .collect();
        assert_eq!(
            penalized,
            vec!["AOI222_X1", "AOI222_X2", "OAI222_X1", "OAI222_X2"],
            "paper: 4 cells with area penalty"
        );
        let min = aligned.min_penalty().unwrap();
        let max = aligned.max_penalty().unwrap();
        // Paper Table 2 (Nangate column): min 4 %, max 14 %.
        assert!((0.04..0.14).contains(&min), "min penalty {min}");
        assert!((0.06..0.16).contains(&max), "max penalty {max}");
    }

    #[test]
    fn dual_grid_zeroes_nangate_penalties() {
        let lib = nangate45_like();
        let aligned = align_library(&lib, &opts_dual()).unwrap();
        assert_eq!(aligned.penalized().len(), 0);
        assert!(aligned.min_penalty().is_none());
    }

    #[test]
    fn critical_width_filter_skips_large_strips() {
        let tech = TechParams::nangate45();
        let aoi = Cell::synthesize(
            CellFamily::Aoi(&[2, 2, 2]),
            DriveStrength::X1,
            &tech,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        // Threshold below every transistor width → nothing is critical →
        // nothing moves.
        let opts = AlignmentOptions {
            critical_width: Some(10.0),
            ..AlignmentOptions::default()
        };
        let a = align_cell(&aoi, &tech, &opts).unwrap();
        assert_eq!(a.moved_strips, 0);
        assert_eq!(a.penalty(), 0.0);
    }

    #[test]
    fn invalid_gap_rejected() {
        let tech = TechParams::nangate45();
        let inv = Cell::synthesize(
            CellFamily::Inv,
            DriveStrength::X1,
            &tech,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let opts = AlignmentOptions {
            strip_x_gap: f64::NAN,
            ..AlignmentOptions::default()
        };
        assert!(align_cell(&inv, &tech, &opts).is_err());
    }
}
