//! # cnfet-layout
//!
//! The **aligned-active layout restriction** (paper Sec. 3.2) and the
//! placement machinery that quantifies its benefits and costs.
//!
//! Directional CNT growth correlates the CNTs seen by CNFETs that share the
//! same y-span. To harvest that correlation chip-wide, every *critical*
//! active region (those holding yield-limiting small-width CNFETs) must sit
//! on a globally shared y-grid — within each cell **and across cells**. The
//! transform implemented here follows the paper's heuristic:
//!
//! 1. estimate `W_min` (done in `cnfet-core`),
//! 2. find critical active regions,
//! 3. move the n-type (resp. p-type) critical regions of every cell onto a
//!    global grid row ([`align`]),
//! 4. re-pack regions that collide in x, widening the cell if necessary.
//!
//! Step 4 is where the area cost of Table 2 comes from: cells whose strips
//! overlap in x (compact high-fan-in cells, flip-flops) must grow. The
//! [`align::GridPolicy::Dual`] variant allows two grid rows per polarity,
//! which removes the overlap cost at a 2× reduction of the correlation
//! benefit (paper Sec. 3.3).
//!
//! [`placement`] places cells into standard-cell rows and measures
//! `P_min-CNFET`, the linear density of critical CNFETs per row — the
//! quantity that, together with the CNT length `L_CNT`, sets the row
//! correlation factor `M_Rmin = L_CNT · ρ` of Eq. (3.2).

pub mod align;
pub mod grid;
pub mod placement;

use std::error::Error;
use std::fmt;

/// Error type for layout operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// Underlying geometry error.
    Growth(cnt_growth::GrowthError),
    /// Underlying library error.
    CellLib(cnfet_celllib::CellLibError),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            LayoutError::Growth(e) => write!(f, "geometry error: {e}"),
            LayoutError::CellLib(e) => write!(f, "cell library error: {e}"),
        }
    }
}

impl Error for LayoutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LayoutError::Growth(e) => Some(e),
            LayoutError::CellLib(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnt_growth::GrowthError> for LayoutError {
    fn from(e: cnt_growth::GrowthError) -> Self {
        LayoutError::Growth(e)
    }
}

impl From<cnfet_celllib::CellLibError> for LayoutError {
    fn from(e: cnfet_celllib::CellLibError) -> Self {
        LayoutError::CellLib(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LayoutError>;

pub use align::{
    align_cell, align_library, AlignmentOptions, CellAlignment, GridPolicy, LibraryAlignment,
};
pub use grid::AlignmentGrid;
pub use placement::{place_cells, PlacedDesign, PlacedRow, PlacementOptions};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_chain() {
        let e: LayoutError = cnfet_celllib::CellLibError::UnknownCell("X".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("cell library error"));
    }
}
