//! Row-based placement and the `P_min-CNFET` density extraction.
//!
//! The correlation benefit of Eq. (3.2), `M_Rmin = L_CNT · ρ`, depends on
//! the linear density `ρ` of critical (small-width) CNFETs along a
//! standard-cell row. This module places a bag of cells into rows (greedy
//! fill at a target utilization — the detail that matters for `ρ` is the
//! cells-per-length mix, not the optimization quality) and measures `ρ`.

use crate::{LayoutError, Result};
use cnfet_celllib::Cell;

/// Options for row placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementOptions {
    /// Row width (nm). Default 100 µm.
    pub row_width: f64,
    /// Placement utilization (fraction of row width occupied by cells).
    pub utilization: f64,
}

impl Default for PlacementOptions {
    fn default() -> Self {
        Self {
            row_width: 100_000.0,
            utilization: 0.75,
        }
    }
}

/// One placed cell: library index + x position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedCell {
    /// Index into the placed design's cell list.
    pub cell: usize,
    /// x of the cell's left edge within its row (nm).
    pub x: f64,
}

/// A filled standard-cell row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlacedRow {
    /// Cells in left-to-right order.
    pub cells: Vec<PlacedCell>,
    /// Occupied width (nm).
    pub occupied: f64,
}

/// A design placed into rows.
#[derive(Debug, Clone)]
pub struct PlacedDesign<'a> {
    cells: Vec<&'a Cell>,
    rows: Vec<PlacedRow>,
    options: PlacementOptions,
}

impl<'a> PlacedDesign<'a> {
    /// The distinct placed cell instances (index space of
    /// [`PlacedCell::cell`]).
    pub fn cells(&self) -> &[&'a Cell] {
        &self.cells
    }

    /// The rows.
    pub fn rows(&self) -> &[PlacedRow] {
        &self.rows
    }

    /// Number of rows used.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Placement options used.
    pub fn options(&self) -> PlacementOptions {
        self.options
    }

    /// Total transistor count across all placed cells.
    pub fn transistor_count(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| &r.cells)
            .map(|pc| self.cells[pc.cell].transistors().len())
            .sum()
    }

    /// Linear density (per µm of row) of transistors with width strictly
    /// below `w_threshold` — the `P_min-CNFET` of Eq. (3.2), averaged over
    /// rows.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if the design is empty or
    /// the threshold is not positive.
    pub fn min_fet_density_per_um(&self, w_threshold: f64) -> Result<f64> {
        if !(w_threshold.is_finite() && w_threshold > 0.0) {
            return Err(LayoutError::InvalidParameter {
                name: "w_threshold",
                value: w_threshold,
                constraint: "must be finite and > 0",
            });
        }
        if self.rows.is_empty() {
            return Err(LayoutError::InvalidParameter {
                name: "rows",
                value: 0.0,
                constraint: "design has no placed rows",
            });
        }
        let mut critical = 0usize;
        for row in &self.rows {
            for pc in &row.cells {
                critical += self.cells[pc.cell]
                    .transistors()
                    .iter()
                    .filter(|t| t.width < w_threshold)
                    .count();
            }
        }
        let total_length_um = self.rows.len() as f64 * self.options.row_width / 1000.0;
        Ok(critical as f64 / total_length_um)
    }

    /// Count of transistors with width strictly below the threshold
    /// (`M_min` of Sec. 2.2 for this placed design).
    pub fn min_fet_count(&self, w_threshold: f64) -> usize {
        self.rows
            .iter()
            .flat_map(|r| &r.cells)
            .map(|pc| {
                self.cells[pc.cell]
                    .transistors()
                    .iter()
                    .filter(|t| t.width < w_threshold)
                    .count()
            })
            .sum()
    }
}

/// Greedily place `instances` (multiset of cells, given as repeated refs)
/// into rows at the target utilization.
///
/// # Errors
///
/// Returns [`LayoutError::InvalidParameter`] for empty input, a
/// non-positive row width, or a utilization outside `(0, 1]`.
pub fn place_cells<'a>(
    instances: &[&'a Cell],
    options: PlacementOptions,
) -> Result<PlacedDesign<'a>> {
    if instances.is_empty() {
        return Err(LayoutError::InvalidParameter {
            name: "instances",
            value: 0.0,
            constraint: "must not be empty",
        });
    }
    if !(options.row_width.is_finite() && options.row_width > 0.0) {
        return Err(LayoutError::InvalidParameter {
            name: "row_width",
            value: options.row_width,
            constraint: "must be finite and > 0",
        });
    }
    if !(options.utilization > 0.0 && options.utilization <= 1.0) {
        return Err(LayoutError::InvalidParameter {
            name: "utilization",
            value: options.utilization,
            constraint: "must be in (0, 1]",
        });
    }

    let budget = options.row_width * options.utilization;
    // Whitespace is distributed between cells so the physical spread
    // matches the utilization (as a placer's spreading step would).
    let mut rows: Vec<PlacedRow> = vec![PlacedRow::default()];
    let mut fill = 0.0_f64; // occupied cell width in the current row

    let cells: Vec<&Cell> = instances.to_vec();
    for (i, cell) in cells.iter().enumerate() {
        let w = cell.width();
        if fill + w > budget && fill > 0.0 {
            rows.push(PlacedRow::default());
            fill = 0.0;
        }
        let row = rows.last_mut().expect("at least one row");
        // Spread position: scale the packed offset by 1/utilization.
        let x = fill / options.utilization;
        row.cells.push(PlacedCell { cell: i, x });
        fill += w;
        row.occupied = fill;
    }

    Ok(PlacedDesign {
        cells,
        rows,
        options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_celllib::cell::{DriveStrength, LayoutStyle, TechParams};
    use cnfet_celllib::CellFamily;

    fn cells() -> (Cell, Cell) {
        let tech = TechParams::nangate45();
        let inv = Cell::synthesize(
            CellFamily::Inv,
            DriveStrength::X1,
            &tech,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let dff = Cell::synthesize(
            CellFamily::Dff {
                reset: false,
                set: false,
                scan: false,
            },
            DriveStrength::X1,
            &tech,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        (inv, dff)
    }

    #[test]
    fn validation() {
        let (inv, _) = cells();
        assert!(place_cells(&[], PlacementOptions::default()).is_err());
        let bad = PlacementOptions {
            utilization: 0.0,
            ..Default::default()
        };
        assert!(place_cells(&[&inv], bad).is_err());
    }

    #[test]
    fn rows_fill_to_utilization() {
        let (inv, _) = cells();
        let opts = PlacementOptions {
            row_width: 10_000.0,
            utilization: 0.5,
        };
        // 50 inverters of ~660 nm: budget 5 000 nm/row → ~7 per row.
        let instances: Vec<&Cell> = std::iter::repeat_n(&inv, 50).collect();
        let placed = place_cells(&instances, opts).unwrap();
        assert!(placed.row_count() >= 6, "rows {}", placed.row_count());
        for row in placed.rows() {
            assert!(row.occupied <= 5_000.0 + inv.width());
        }
        // Spread positions reach toward the full row width.
        let last_row_x = placed.rows()[0].cells.last().unwrap().x;
        assert!(last_row_x > 5_000.0, "spread x {last_row_x}");
        assert_eq!(placed.transistor_count(), 50 * 2);
    }

    #[test]
    fn min_fet_density_counts_only_critical() {
        let (inv, dff) = cells();
        let opts = PlacementOptions {
            row_width: 20_000.0,
            utilization: 0.8,
        };
        let instances: Vec<&Cell> = vec![&inv, &dff, &inv, &dff, &dff];
        let placed = place_cells(&instances, opts).unwrap();
        // Threshold below everything → zero density.
        assert_eq!(placed.min_fet_count(10.0), 0);
        // Threshold above internals (110 nm) only → counts DFF internals.
        let internals_per_dff = dff.transistors().iter().filter(|t| t.width < 150.0).count();
        assert_eq!(placed.min_fet_count(150.0), 3 * internals_per_dff);
        let rho = placed.min_fet_density_per_um(150.0).unwrap();
        assert!(rho > 0.0);
        assert!(placed.min_fet_density_per_um(-1.0).is_err());
    }
}
