//! Global alignment grids: the shared y-coordinates that active regions
//! snap to across the whole die.

use crate::align::GridPolicy;
use crate::{LayoutError, Result};
use cnfet_celllib::cell::TechParams;

/// The global y-grid for aligned active regions.
///
/// Cells placed in a standard-cell row inherit these y positions, so every
/// aligned CNFET in the row shares its y-span — and therefore its CNTs —
/// with its row neighbours (paper Fig 3.1c).
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentGrid {
    n_rows: Vec<f64>,
    p_rows: Vec<f64>,
    row_height: f64,
}

impl AlignmentGrid {
    /// Derive the grid from technology parameters and a policy.
    ///
    /// Row 0 of each polarity sits at the bottom of the polarity band; the
    /// optional second row is stacked one maximal-strip-height (plus gap)
    /// above.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] if the second row would
    /// escape the polarity band (inconsistent [`TechParams`]).
    pub fn from_tech(tech: &TechParams, policy: GridPolicy) -> Result<Self> {
        let pitch = tech.finger_cap_multi + tech.strip_gap;
        let mut n_rows = vec![tech.n_band.0];
        let mut p_rows = vec![tech.p_band.0];
        if policy == GridPolicy::Dual {
            let n1 = tech.n_band.0 + pitch;
            let p1 = tech.p_band.0 + pitch;
            if n1 + tech.finger_cap_multi > tech.n_band.1
                || p1 + tech.finger_cap_multi > tech.p_band.1
            {
                return Err(LayoutError::InvalidParameter {
                    name: "n_band/p_band",
                    value: n1,
                    constraint: "polarity band too short for a second grid row",
                });
            }
            n_rows.push(n1);
            p_rows.push(p1);
        }
        Ok(Self {
            n_rows,
            p_rows,
            row_height: tech.finger_cap_multi,
        })
    }

    /// y positions of the n-type grid rows (cell-local coordinates).
    pub fn n_rows(&self) -> &[f64] {
        &self.n_rows
    }

    /// y positions of the p-type grid rows.
    pub fn p_rows(&self) -> &[f64] {
        &self.p_rows
    }

    /// Maximum strip height a grid row accommodates (nm).
    pub fn row_height(&self) -> f64 {
        self.row_height
    }

    /// Snap a strip's y to the nearest grid row of its polarity; returns
    /// the row index and the snapped y.
    pub fn snap(&self, fet_type: cnfet_device::FetType, y: f64) -> (usize, f64) {
        let rows = match fet_type {
            cnfet_device::FetType::NType => &self.n_rows,
            cnfet_device::FetType::PType => &self.p_rows,
        };
        let mut best = (0usize, rows[0]);
        let mut best_d = (y - rows[0]).abs();
        for (i, &r) in rows.iter().enumerate().skip(1) {
            let d = (y - r).abs();
            if d < best_d {
                best = (i, r);
                best_d = d;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_device::FetType;

    #[test]
    fn single_grid_has_one_row_per_polarity() {
        let tech = TechParams::nangate45();
        let g = AlignmentGrid::from_tech(&tech, GridPolicy::Single).unwrap();
        assert_eq!(g.n_rows().len(), 1);
        assert_eq!(g.p_rows().len(), 1);
        assert_eq!(g.n_rows()[0], tech.n_band.0);
    }

    #[test]
    fn dual_grid_rows_fit_in_band() {
        let tech = TechParams::nangate45();
        let g = AlignmentGrid::from_tech(&tech, GridPolicy::Dual).unwrap();
        assert_eq!(g.n_rows().len(), 2);
        assert!(g.n_rows()[1] + g.row_height() <= tech.n_band.1 + 1e-9);
    }

    #[test]
    fn snapping_picks_nearest_row() {
        let tech = TechParams::nangate45();
        let g = AlignmentGrid::from_tech(&tech, GridPolicy::Dual).unwrap();
        let (i0, y0) = g.snap(FetType::NType, tech.n_band.0 + 1.0);
        assert_eq!(i0, 0);
        assert_eq!(y0, tech.n_band.0);
        let (i1, _) = g.snap(FetType::NType, tech.n_band.1);
        assert_eq!(i1, 1);
        let (ip, yp) = g.snap(FetType::PType, tech.p_band.0 - 5.0);
        assert_eq!(ip, 0);
        assert_eq!(yp, tech.p_band.0);
    }
}
