//! Logic-cell families and their structural properties.

/// Functional family of a standard cell.
///
/// The variants cover the Nangate 45 nm Open Cell Library plus the richer
/// mix found in commercial libraries (adders, wide muxes, scan flops, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellFamily {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// Clock buffer (balanced rise/fall).
    ClkBuf,
    /// Integrated clock-gating cell.
    ClkGate,
    /// k-input NAND (k = fan-in).
    Nand(u8),
    /// k-input NOR.
    Nor(u8),
    /// k-input AND.
    And(u8),
    /// k-input OR.
    Or(u8),
    /// AND-OR-invert; the digits are the per-branch fan-ins, e.g.
    /// `Aoi(&[2,2,2])` is AOI222.
    Aoi(&'static [u8]),
    /// OR-AND-invert, same digit convention.
    Oai(&'static [u8]),
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// k-to-1 multiplexer.
    Mux(u8),
    /// Half adder.
    HalfAdder,
    /// Full adder.
    FullAdder,
    /// D flip-flop; flags: reset, set, scan.
    Dff {
        /// Has asynchronous reset.
        reset: bool,
        /// Has asynchronous set.
        set: bool,
        /// Has a scan mux (SDFF).
        scan: bool,
    },
    /// Level-sensitive latch; `active_high` selects DLH vs DLL.
    Latch {
        /// Transparent when the clock is high.
        active_high: bool,
    },
    /// Tri-state buffer.
    TriBuf,
    /// Tri-state inverter.
    TriInv,
    /// Constant-0 tie cell.
    Logic0,
    /// Constant-1 tie cell.
    Logic1,
    /// Filler cell (no transistors that matter for yield).
    Fill,
    /// Antenna diode cell.
    Antenna,
}

impl CellFamily {
    /// Library name prefix, e.g. `"AOI222"`.
    pub fn prefix(&self) -> String {
        match self {
            CellFamily::Inv => "INV".into(),
            CellFamily::Buf => "BUF".into(),
            CellFamily::ClkBuf => "CLKBUF".into(),
            CellFamily::ClkGate => "CLKGATE".into(),
            CellFamily::Nand(k) => format!("NAND{k}"),
            CellFamily::Nor(k) => format!("NOR{k}"),
            CellFamily::And(k) => format!("AND{k}"),
            CellFamily::Or(k) => format!("OR{k}"),
            CellFamily::Aoi(branches) => {
                let digits: String = branches.iter().map(|b| b.to_string()).collect();
                format!("AOI{digits}")
            }
            CellFamily::Oai(branches) => {
                let digits: String = branches.iter().map(|b| b.to_string()).collect();
                format!("OAI{digits}")
            }
            CellFamily::Xor2 => "XOR2".into(),
            CellFamily::Xnor2 => "XNOR2".into(),
            CellFamily::Mux(k) => format!("MUX{k}"),
            CellFamily::HalfAdder => "HA".into(),
            CellFamily::FullAdder => "FA".into(),
            CellFamily::Dff { reset, set, scan } => {
                let mut s = String::from(if *scan { "SDFF" } else { "DFF" });
                if *reset {
                    s.push('R');
                }
                if *set {
                    s.push('S');
                }
                s
            }
            CellFamily::Latch { active_high } => {
                if *active_high {
                    "DLH".into()
                } else {
                    "DLL".into()
                }
            }
            CellFamily::TriBuf => "TBUF".into(),
            CellFamily::TriInv => "TINV".into(),
            CellFamily::Logic0 => "LOGIC0".into(),
            CellFamily::Logic1 => "LOGIC1".into(),
            CellFamily::Fill => "FILLCELL".into(),
            CellFamily::Antenna => "ANTENNA".into(),
        }
    }

    /// Number of logic inputs (0 for tie/fill cells).
    pub fn fanin(&self) -> u8 {
        match self {
            CellFamily::Inv
            | CellFamily::Buf
            | CellFamily::ClkBuf
            | CellFamily::TriInv
            | CellFamily::Latch { .. } => 1,
            CellFamily::ClkGate | CellFamily::TriBuf => 2,
            CellFamily::Nand(k) | CellFamily::Nor(k) | CellFamily::And(k) | CellFamily::Or(k) => *k,
            CellFamily::Aoi(b) | CellFamily::Oai(b) => b.iter().sum(),
            CellFamily::Xor2 | CellFamily::Xnor2 => 2,
            CellFamily::Mux(k) => k + k.ilog2() as u8,
            CellFamily::HalfAdder => 2,
            CellFamily::FullAdder => 3,
            CellFamily::Dff { scan, .. } => 2 + 2 * (*scan as u8),
            CellFamily::Logic0 | CellFamily::Logic1 | CellFamily::Fill | CellFamily::Antenna => 0,
        }
    }

    /// Whether the cell stores state (flop/latch/clock-gate).
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            CellFamily::Dff { .. } | CellFamily::Latch { .. } | CellFamily::ClkGate
        )
    }

    /// Whether the cell contains any transistors at all.
    pub fn has_transistors(&self) -> bool {
        !matches!(self, CellFamily::Fill | CellFamily::Antenna)
    }

    /// Number of transistors **per polarity** in the main (output-driving)
    /// network, at unit drive. Internal/feedback devices are counted by
    /// [`CellFamily::internal_transistors_per_polarity`].
    pub fn main_transistors_per_polarity(&self) -> u8 {
        match self {
            CellFamily::Inv | CellFamily::TriInv => 1,
            CellFamily::Buf | CellFamily::ClkBuf => 2,
            CellFamily::TriBuf => 3,
            CellFamily::Nand(k) | CellFamily::Nor(k) => *k,
            CellFamily::And(k) | CellFamily::Or(k) => *k + 1,
            CellFamily::Aoi(b) | CellFamily::Oai(b) => b.iter().sum(),
            CellFamily::Xor2 | CellFamily::Xnor2 => 5,
            CellFamily::Mux(k) => 2 * *k + 1,
            CellFamily::HalfAdder => 7,
            CellFamily::FullAdder => 12,
            CellFamily::Dff { .. } | CellFamily::Latch { .. } | CellFamily::ClkGate => 2,
            CellFamily::Logic0 | CellFamily::Logic1 => 1,
            CellFamily::Fill | CellFamily::Antenna => 0,
        }
    }

    /// Number of small internal transistors per polarity (clock inverters,
    /// feedback keepers, scan muxes). These stay at near-minimum width
    /// regardless of drive strength — they are the yield-critical
    /// population of Sec. 2.2.
    pub fn internal_transistors_per_polarity(&self) -> u8 {
        match self {
            CellFamily::Dff { reset, set, scan } => {
                // Master+slave transmission gates and keepers ≈ 10, clock
                // inverters 2, plus reset/set gating and scan mux.
                12 + 2 * (*reset as u8) + 2 * (*set as u8) + 4 * (*scan as u8)
            }
            CellFamily::Latch { .. } => 6,
            CellFamily::ClkGate => 8,
            CellFamily::And(_) | CellFamily::Or(_) => 0,
            CellFamily::HalfAdder => 2,
            CellFamily::FullAdder => 4,
            _ => 0,
        }
    }

    /// Complexity class used by the strip planner: 0 = single strip,
    /// 1 = two strips that fit without overlap, 2 = two/three strips that
    /// overlap in x (alignment will widen the cell unless multiple grids
    /// are allowed).
    pub fn strip_complexity(&self) -> u8 {
        match self {
            CellFamily::Aoi(b) | CellFamily::Oai(b) => {
                let fanin: u8 = b.iter().sum();
                if b.len() >= 3 && fanin >= 6 {
                    2 // AOI222/OAI222: three stacked branches
                } else if fanin >= 4 {
                    1
                } else {
                    0
                }
            }
            CellFamily::FullAdder | CellFamily::HalfAdder => 1,
            CellFamily::Dff { .. } | CellFamily::Latch { .. } | CellFamily::ClkGate => 1,
            CellFamily::Mux(k) if *k >= 4 => 1,
            CellFamily::Nand(k) | CellFamily::Nor(k) | CellFamily::And(k) | CellFamily::Or(k)
                if *k >= 4 =>
            {
                1
            }
            _ => 0,
        }
    }
}

impl std::fmt::Display for CellFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes() {
        assert_eq!(CellFamily::Aoi(&[2, 2, 2]).prefix(), "AOI222");
        assert_eq!(CellFamily::Oai(&[2, 1]).prefix(), "OAI21");
        assert_eq!(
            CellFamily::Dff {
                reset: true,
                set: false,
                scan: true
            }
            .prefix(),
            "SDFFR"
        );
        assert_eq!(CellFamily::Nand(3).prefix(), "NAND3");
        assert_eq!(CellFamily::Latch { active_high: true }.prefix(), "DLH");
    }

    #[test]
    fn fanin_and_sequential() {
        assert_eq!(CellFamily::Aoi(&[2, 2, 2]).fanin(), 6);
        assert_eq!(CellFamily::Mux(2).fanin(), 3);
        assert_eq!(CellFamily::FullAdder.fanin(), 3);
        assert!(CellFamily::Dff {
            reset: false,
            set: false,
            scan: false
        }
        .is_sequential());
        assert!(!CellFamily::Nand(2).is_sequential());
        assert!(CellFamily::ClkGate.is_sequential());
    }

    #[test]
    fn transistor_counts() {
        assert_eq!(CellFamily::Inv.main_transistors_per_polarity(), 1);
        assert_eq!(CellFamily::Nand(4).main_transistors_per_polarity(), 4);
        let dff = CellFamily::Dff {
            reset: true,
            set: true,
            scan: true,
        };
        assert_eq!(dff.internal_transistors_per_polarity(), 12 + 2 + 2 + 4);
        assert!(!CellFamily::Fill.has_transistors());
        assert_eq!(CellFamily::Fill.main_transistors_per_polarity(), 0);
    }

    #[test]
    fn strip_complexity_classes() {
        assert_eq!(CellFamily::Inv.strip_complexity(), 0);
        assert_eq!(CellFamily::Aoi(&[2, 2]).strip_complexity(), 1);
        assert_eq!(CellFamily::Aoi(&[2, 2, 2]).strip_complexity(), 2);
        assert_eq!(CellFamily::Oai(&[2, 2, 2]).strip_complexity(), 2);
        assert_eq!(
            CellFamily::Dff {
                reset: false,
                set: false,
                scan: false
            }
            .strip_complexity(),
            1
        );
    }
}
