//! # cnfet-celllib
//!
//! Standard-cell library models for CNFET logic.
//!
//! The paper evaluates its aligned-active layout restriction on two
//! libraries:
//!
//! * the **Nangate 45 nm Open Cell Library** (134 cells), slightly modified
//!   for CNFET technology per \[Bobba 09\] — modeled by
//!   [`nangate45::nangate45_like`];
//! * a **commercial 65 nm library** (775 cells) — proprietary, so modeled by
//!   the synthetic [`commercial65::commercial65_like`] generator whose
//!   complexity mix (high-fan-in cells, flip-flops, latches) matches the
//!   fractions the paper reports.
//!
//! Each [`cell::Cell`] carries the geometry the alignment analysis needs:
//! cell width, transistor widths, and the **active strips** (diffusion
//! regions) for both polarities with their intra-cell positions. Cells whose
//! strips sit at different y positions *and* overlap in x are exactly the
//! cells that must widen when all strips are forced onto one global y-grid
//! (paper Fig 3.2: AOI222_X1 grows ~9 %).
//!
//! ## Example
//!
//! ```
//! use cnfet_celllib::nangate45::nangate45_like;
//!
//! let lib = nangate45_like();
//! assert_eq!(lib.cells().len(), 134);
//! let aoi = lib.cell("AOI222_X1").expect("present");
//! assert!(aoi.n_strips().len() > 1, "AOI222 uses multiple n-strips");
//! ```

pub mod cell;
pub mod commercial65;
pub mod family;
pub mod library;
pub mod nangate45;

use std::error::Error;
use std::fmt;

/// Error type for library-model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CellLibError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A named cell does not exist in the library.
    UnknownCell(String),
    /// Underlying geometry error.
    Growth(cnt_growth::GrowthError),
}

impl fmt::Display for CellLibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellLibError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            CellLibError::UnknownCell(name) => write!(f, "unknown cell `{name}`"),
            CellLibError::Growth(e) => write!(f, "geometry error: {e}"),
        }
    }
}

impl Error for CellLibError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CellLibError::Growth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnt_growth::GrowthError> for CellLibError {
    fn from(e: cnt_growth::GrowthError) -> Self {
        CellLibError::Growth(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CellLibError>;

pub use cell::{ActiveStrip, Cell, CellTransistor, DriveStrength};
pub use family::CellFamily;
pub use library::CellLibrary;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = CellLibError::UnknownCell("NAND9_X9".into());
        assert!(e.to_string().contains("NAND9_X9"));
    }
}
