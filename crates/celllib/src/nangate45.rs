//! Nangate-45-class open cell library (134 cells), CNFET-modified.
//!
//! The real Nangate 45 nm Open Cell Library is freely licensed but not
//! vendorable here, so this module regenerates a library with the same cell
//! roster structure (families × drive strengths, 134 cells total) and
//! CNFET-shrunk transistor sizing per \[Bobba 09\]. The aligned-active
//! analysis only consumes active-strip geometry, transistor widths and cell
//! widths, all of which are synthesized at realistic values.

use crate::cell::{Cell, DriveStrength, LayoutStyle, TechParams};
use crate::family::CellFamily;
use crate::library::CellLibrary;

/// Drive-strength shorthands used by the roster table.
const D1: DriveStrength = DriveStrength::X1;
const D2: DriveStrength = DriveStrength::X2;
const D4: DriveStrength = DriveStrength::X4;
const D8: DriveStrength = DriveStrength::X8;
const D16: DriveStrength = DriveStrength::X16;
const D32: DriveStrength = DriveStrength::X32;

/// The roster: (family, available drive strengths).
fn roster() -> Vec<(CellFamily, Vec<DriveStrength>)> {
    use CellFamily as F;
    let all6 = vec![D1, D2, D4, D8, D16, D32];
    let tri = vec![D1, D2, D4];
    let duo = vec![D1, D2];
    vec![
        (F::Inv, all6.clone()),
        (F::Buf, all6.clone()),
        (F::ClkBuf, vec![D1, D2, D4, D8]),
        (F::Nand(2), tri.clone()),
        (F::Nand(3), tri.clone()),
        (F::Nand(4), tri.clone()),
        (F::Nor(2), tri.clone()),
        (F::Nor(3), tri.clone()),
        (F::Nor(4), tri.clone()),
        (F::And(2), tri.clone()),
        (F::And(3), tri.clone()),
        (F::And(4), tri.clone()),
        (F::Or(2), tri.clone()),
        (F::Or(3), tri.clone()),
        (F::Or(4), tri.clone()),
        (F::Aoi(&[2, 1]), tri.clone()),
        (F::Aoi(&[2, 2]), tri.clone()),
        (F::Aoi(&[2, 1, 1]), tri.clone()),
        (F::Aoi(&[2, 2, 1]), tri.clone()),
        (F::Aoi(&[2, 2, 2]), duo.clone()), // AOI222: the Fig 3.2 cell
        (F::Oai(&[2, 1]), tri.clone()),
        (F::Oai(&[2, 2]), tri.clone()),
        (F::Oai(&[2, 1, 1]), tri.clone()),
        (F::Oai(&[2, 2, 1]), tri.clone()),
        (F::Oai(&[2, 2, 2]), duo.clone()),
        (F::Oai(&[3, 3]), vec![D1]),
        (F::Xor2, tri.clone()),
        (F::Xnor2, tri.clone()),
        (F::Mux(2), tri.clone()),
        (F::HalfAdder, duo.clone()),
        (F::FullAdder, duo.clone()),
        (
            F::Dff {
                reset: false,
                set: false,
                scan: false,
            },
            duo.clone(),
        ),
        (
            F::Dff {
                reset: true,
                set: false,
                scan: false,
            },
            duo.clone(),
        ),
        (
            F::Dff {
                reset: false,
                set: true,
                scan: false,
            },
            duo.clone(),
        ),
        (
            F::Dff {
                reset: true,
                set: true,
                scan: false,
            },
            duo.clone(),
        ),
        (
            F::Dff {
                reset: false,
                set: false,
                scan: true,
            },
            duo.clone(),
        ),
        (
            F::Dff {
                reset: true,
                set: false,
                scan: true,
            },
            duo.clone(),
        ),
        (
            F::Dff {
                reset: false,
                set: true,
                scan: true,
            },
            duo.clone(),
        ),
        (
            F::Dff {
                reset: true,
                set: true,
                scan: true,
            },
            duo.clone(),
        ),
        (F::Latch { active_high: true }, duo.clone()),
        (F::Latch { active_high: false }, duo.clone()),
        (F::TriBuf, vec![D1, D2, D4, D8, D16]),
        (F::TriInv, duo.clone()),
        (F::ClkGate, vec![D1, D2, D4, D8]),
        (F::Logic0, vec![D1]),
        (F::Logic1, vec![D1]),
        (F::Fill, all6),
        (F::Antenna, vec![D1]),
    ]
}

/// Build the 134-cell Nangate-45-class library.
///
/// # Panics
///
/// Panics only if the internal roster is inconsistent (covered by tests).
pub fn nangate45_like() -> CellLibrary {
    let tech = TechParams::nangate45();
    let mut cells = Vec::new();
    for (family, drives) in roster() {
        for d in drives {
            cells.push(
                Cell::synthesize(family, d, &tech, LayoutStyle::Relaxed)
                    .expect("roster geometry is valid"),
            );
        }
    }
    CellLibrary::new("nangate45-like", tech, LayoutStyle::Relaxed, cells)
        .expect("roster names are unique")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_134_cells() {
        let lib = nangate45_like();
        assert_eq!(lib.cells().len(), 134, "paper: 134 cells in the library");
    }

    #[test]
    fn exactly_four_overlapped_cells() {
        // Paper Sec 3.3: "area impact on 4 cells (out of a total of 134)".
        let lib = nangate45_like();
        let names: Vec<&str> = lib.overlapped_cells().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec!["AOI222_X1", "AOI222_X2", "OAI222_X1", "OAI222_X2"],
            "only the AOI222/OAI222 cells overlap strips"
        );
    }

    #[test]
    fn known_cells_exist() {
        let lib = nangate45_like();
        for name in [
            "INV_X1",
            "INV_X32",
            "NAND2_X1",
            "AOI222_X1",
            "OAI33_X1",
            "DFF_X1",
            "SDFFRS_X2",
            "FILLCELL_X32",
            "MUX2_X4",
            "FA_X1",
        ] {
            assert!(lib.cell(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn min_width_is_the_internal_device() {
        let lib = nangate45_like();
        assert_eq!(lib.min_transistor_width(), Some(110.0));
    }

    #[test]
    fn sequential_fraction_is_realistic() {
        let lib = nangate45_like();
        let frac = lib.sequential_count() as f64 / lib.cells().len() as f64;
        // 8 DFF + 8 SDFF + 4 latches + 4 clock gates = 24 of 134 ≈ 18 %.
        assert!((0.1..0.3).contains(&frac), "sequential fraction {frac}");
    }
}
