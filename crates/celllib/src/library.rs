//! A collection of standard cells with lookup and aggregate statistics.

use crate::cell::{Cell, LayoutStyle, TechParams};
use crate::{CellLibError, Result};
use std::collections::HashMap;

/// A standard-cell library.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    name: String,
    tech: TechParams,
    style: LayoutStyle,
    cells: Vec<Cell>,
    index: HashMap<String, usize>,
}

impl CellLibrary {
    /// Assemble a library from synthesized cells.
    ///
    /// # Errors
    ///
    /// Returns [`CellLibError::InvalidParameter`] if two cells share a name.
    pub fn new(
        name: impl Into<String>,
        tech: TechParams,
        style: LayoutStyle,
        cells: Vec<Cell>,
    ) -> Result<Self> {
        let mut index = HashMap::with_capacity(cells.len());
        for (i, c) in cells.iter().enumerate() {
            if index.insert(c.name().to_string(), i).is_some() {
                return Err(CellLibError::InvalidParameter {
                    name: "cells",
                    value: i as f64,
                    constraint: "duplicate cell name",
                });
            }
        }
        Ok(Self {
            name: name.into(),
            tech,
            style,
            cells,
            index,
        })
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Technology parameters the cells were synthesized with.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// Layout packing style.
    pub fn style(&self) -> LayoutStyle {
        self.style
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Look up a cell by exact name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.index.get(name).map(|&i| &self.cells[i])
    }

    /// Look up a cell, erroring with the name if absent.
    ///
    /// # Errors
    ///
    /// Returns [`CellLibError::UnknownCell`].
    pub fn require(&self, name: &str) -> Result<&Cell> {
        self.cell(name)
            .ok_or_else(|| CellLibError::UnknownCell(name.to_string()))
    }

    /// Number of sequential cells.
    pub fn sequential_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_sequential()).count()
    }

    /// Cells with more than one active strip per polarity (candidates for
    /// alignment trouble).
    pub fn multi_strip_cells(&self) -> Vec<&Cell> {
        self.cells
            .iter()
            .filter(|c| c.n_strips().len() > 1 || c.p_strips().len() > 1)
            .collect()
    }

    /// Cells whose strips overlap in x within a polarity — the population
    /// that the single-grid aligned-active restriction will widen.
    pub fn overlapped_cells(&self) -> Vec<&Cell> {
        self.cells
            .iter()
            .filter(|c| {
                for strips in [c.n_strips(), c.p_strips()] {
                    for i in 0..strips.len() {
                        for j in i + 1..strips.len() {
                            let (a, b) = (strips[i].rect, strips[j].rect);
                            if a.x0() < b.x1()
                                && b.x0() < a.x1()
                                && strips[i].band != strips[j].band
                            {
                                return true;
                            }
                        }
                    }
                }
                false
            })
            .collect()
    }

    /// Smallest transistor width across the library (nm), ignoring
    /// transistor-free cells.
    pub fn min_transistor_width(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter_map(Cell::min_transistor_width)
            .min_by(|a, b| a.partial_cmp(b).expect("widths are finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::DriveStrength;
    use crate::family::CellFamily;

    fn tiny() -> CellLibrary {
        let tech = TechParams::nangate45();
        let cells = vec![
            Cell::synthesize(
                CellFamily::Inv,
                DriveStrength::X1,
                &tech,
                LayoutStyle::Relaxed,
            )
            .unwrap(),
            Cell::synthesize(
                CellFamily::Aoi(&[2, 2, 2]),
                DriveStrength::X1,
                &tech,
                LayoutStyle::Relaxed,
            )
            .unwrap(),
            Cell::synthesize(
                CellFamily::Dff {
                    reset: false,
                    set: false,
                    scan: false,
                },
                DriveStrength::X1,
                &tech,
                LayoutStyle::Relaxed,
            )
            .unwrap(),
        ];
        CellLibrary::new("tiny", tech, LayoutStyle::Relaxed, cells).unwrap()
    }

    #[test]
    fn lookup_and_require() {
        let lib = tiny();
        assert!(lib.cell("INV_X1").is_some());
        assert!(lib.cell("INV_X9").is_none());
        assert!(lib.require("AOI222_X1").is_ok());
        assert!(matches!(
            lib.require("missing"),
            Err(CellLibError::UnknownCell(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let tech = TechParams::nangate45();
        let c = Cell::synthesize(
            CellFamily::Inv,
            DriveStrength::X1,
            &tech,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let dup = c.clone();
        assert!(CellLibrary::new("dup", tech, LayoutStyle::Relaxed, vec![c, dup]).is_err());
    }

    #[test]
    fn aggregate_queries() {
        let lib = tiny();
        assert_eq!(lib.sequential_count(), 1);
        assert_eq!(lib.multi_strip_cells().len(), 2); // AOI222 + DFF
                                                      // Only AOI222 overlaps in x under the relaxed style.
        let overlapped: Vec<&str> = lib.overlapped_cells().iter().map(|c| c.name()).collect();
        assert_eq!(overlapped, vec!["AOI222_X1"]);
        assert_eq!(lib.min_transistor_width(), Some(110.0)); // DFF internals
    }
}
