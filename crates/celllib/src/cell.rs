//! Standard-cell geometry: transistors, active strips, drive strengths.
//!
//! The model keeps exactly the geometry the paper's analysis consumes:
//!
//! * per-transistor **widths** (for the Fig 2.2a histogram, for `W_min`
//!   upsizing and for gate-capacitance penalties);
//! * per-cell **active strips** — contiguous diffusion regions at specific
//!   intra-cell positions. Strips that sit at *different y* and *overlap in
//!   x* are the ones that force cell widening when the aligned-active
//!   restriction pushes them onto one global y-grid (paper Sec 3.2/3.3).
//!
//! Cells are *synthesized* from a family + drive strength + technology
//! parameters, mirroring how \[Bobba 09\] re-generated the Nangate library
//! for CNFETs.

use crate::family::CellFamily;
use crate::{CellLibError, Result};
use cnt_growth::Rect;

/// Drive strength multiplier (the `_X1`, `_X2`, … suffix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DriveStrength(u16);

impl DriveStrength {
    /// X1 unit drive.
    pub const X1: DriveStrength = DriveStrength(1);
    /// X2 drive.
    pub const X2: DriveStrength = DriveStrength(2);
    /// X4 drive.
    pub const X4: DriveStrength = DriveStrength(4);
    /// X8 drive.
    pub const X8: DriveStrength = DriveStrength(8);
    /// X16 drive.
    pub const X16: DriveStrength = DriveStrength(16);
    /// X32 drive.
    pub const X32: DriveStrength = DriveStrength(32);

    /// Create an arbitrary drive multiplier (≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`CellLibError::InvalidParameter`] for a zero multiplier.
    pub fn new(multiplier: u16) -> Result<Self> {
        if multiplier == 0 {
            return Err(CellLibError::InvalidParameter {
                name: "multiplier",
                value: 0.0,
                constraint: "must be >= 1",
            });
        }
        Ok(Self(multiplier))
    }

    /// The numeric multiplier.
    pub fn multiplier(&self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// Technology parameters used to synthesize cell geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Technology node (nm): 45, 32, 22, 16, 65, …
    pub node_nm: f64,
    /// Standard-cell height (nm).
    pub cell_height: f64,
    /// Poly/gate placement pitch (nm).
    pub gate_pitch: f64,
    /// Margin from the cell boundary to the first diffusion column (nm).
    pub edge_margin: f64,
    /// Vertical gap between stacked strips of the same polarity (nm).
    pub strip_gap: f64,
    /// y-range available to n-type strips (nm, bottom of cell).
    pub n_band: (f64, f64),
    /// y-range available to p-type strips (nm, top of cell).
    pub p_band: (f64, f64),
    /// Main-network transistor width at X1 drive (nm).
    pub base_main_width: f64,
    /// Width of small internal transistors (keepers, clock inverters) —
    /// independent of drive strength; these dominate `M_min` (nm).
    pub base_internal_width: f64,
    /// Maximum finger width in single-strip cells (nm).
    pub finger_cap_single: f64,
    /// Maximum finger width in multi-strip cells (nm).
    pub finger_cap_multi: f64,
}

impl TechParams {
    /// Nangate-45-class CNFET parameters (\[Bobba 09\]-style shrink).
    pub fn nangate45() -> Self {
        Self {
            node_nm: 45.0,
            cell_height: 1400.0,
            gate_pitch: 190.0,
            edge_margin: 140.0,
            strip_gap: 40.0,
            n_band: (110.0, 670.0),
            p_band: (730.0, 1290.0),
            base_main_width: 185.0,
            base_internal_width: 110.0,
            finger_cap_single: 480.0,
            finger_cap_multi: 250.0,
        }
    }

    /// Commercial-65-class parameters: the 45 nm geometry scaled by 65/45.
    pub fn commercial65() -> Self {
        let s = 65.0 / 45.0;
        let n45 = Self::nangate45();
        Self {
            node_nm: 65.0,
            cell_height: n45.cell_height * s,
            gate_pitch: n45.gate_pitch * s,
            edge_margin: n45.edge_margin * s,
            strip_gap: n45.strip_gap * s,
            n_band: (n45.n_band.0 * s, n45.n_band.1 * s),
            p_band: (n45.p_band.0 * s, n45.p_band.1 * s),
            base_main_width: n45.base_main_width * s,
            base_internal_width: n45.base_internal_width * s,
            finger_cap_single: n45.finger_cap_single * s,
            finger_cap_multi: n45.finger_cap_multi * s,
        }
    }

    /// Linear shrink of the transistor-width-related parameters to another
    /// node, keeping CNT pitch physics unchanged (the paper's scaling
    /// analysis: "the CNFET width distribution scales linearly with
    /// technology node, while the inter-CNT pitch remains constant").
    pub fn scaled_to(&self, node_nm: f64) -> Self {
        let s = node_nm / self.node_nm;
        Self {
            node_nm,
            cell_height: self.cell_height * s,
            gate_pitch: self.gate_pitch * s,
            edge_margin: self.edge_margin * s,
            strip_gap: self.strip_gap * s,
            n_band: (self.n_band.0 * s, self.n_band.1 * s),
            p_band: (self.p_band.0 * s, self.p_band.1 * s),
            base_main_width: self.base_main_width * s,
            base_internal_width: self.base_internal_width * s,
            finger_cap_single: self.finger_cap_single * s,
            finger_cap_multi: self.finger_cap_multi * s,
        }
    }
}

/// Layout style of a library: how aggressively diffusion is packed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutStyle {
    /// Open-library style: only the highest-fan-in cells overlap strips in
    /// x (Nangate: AOI222/OAI222 only).
    Relaxed,
    /// Commercial style: area-optimized; high-fan-in *and* sequential cells
    /// pack strips with x-overlap (≈20 % of a 775-cell library).
    Compact,
}

/// One transistor inside a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTransistor {
    /// Polarity.
    pub fet_type: cnfet_device::FetType,
    /// Gate width (nm) — one finger.
    pub width: f64,
    /// Index into the cell's strip list this finger sits in.
    pub strip: usize,
    /// Whether this is a small internal device (keeper/clock inverter).
    pub is_internal: bool,
}

/// A contiguous diffusion (active) region inside a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveStrip {
    /// Polarity of the devices in this strip.
    pub fet_type: cnfet_device::FetType,
    /// Strip rectangle in cell-local coordinates (nm).
    pub rect: Rect,
    /// Vertical band index within the polarity region (0 = closest to the
    /// rail). Strips in different bands are *not* y-aligned pre-transform.
    pub band: u8,
}

/// A synthesized standard cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    name: String,
    family: CellFamily,
    drive: DriveStrength,
    width: f64,
    height: f64,
    transistors: Vec<CellTransistor>,
    strips: Vec<ActiveStrip>,
}

impl Cell {
    /// Synthesize the geometry of `family` at `drive` under `tech`, using
    /// the default `PREFIX_DRIVE` name.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors (they indicate inconsistent
    /// [`TechParams`]).
    pub fn synthesize(
        family: CellFamily,
        drive: DriveStrength,
        tech: &TechParams,
        style: LayoutStyle,
    ) -> Result<Self> {
        let name = format!("{}_{}", family.prefix(), drive);
        Self::synthesize_named(name, family, drive, tech, style)
    }

    /// Synthesize with an explicit cell name — used by library generators
    /// that add variant tags (e.g. VT flavors `NAND2_LVT_X2`).
    ///
    /// # Errors
    ///
    /// Propagates geometry errors (they indicate inconsistent
    /// [`TechParams`]).
    pub fn synthesize_named(
        name: impl Into<String>,
        family: CellFamily,
        drive: DriveStrength,
        tech: &TechParams,
        style: LayoutStyle,
    ) -> Result<Self> {
        use cnfet_device::FetType;

        let name = name.into();
        if !family.has_transistors() {
            // Fill/antenna cells: fixed small width, no strips.
            let width = tech.edge_margin * 2.0 + tech.gate_pitch * drive.multiplier() as f64;
            return Ok(Self {
                name,
                family,
                drive,
                width,
                height: tech.cell_height,
                transistors: Vec::new(),
                strips: Vec::new(),
            });
        }

        // --- finger plan -------------------------------------------------
        let complexity = family.strip_complexity();
        let two_strips = complexity >= 1;
        let overlapped = match style {
            LayoutStyle::Relaxed => complexity >= 2,
            LayoutStyle::Compact => two_strips,
        };
        let cap = if two_strips {
            tech.finger_cap_multi
        } else {
            tech.finger_cap_single
        };

        let main_total_w = tech.base_main_width * drive.multiplier() as f64;
        let fingers_per_main = (main_total_w / cap).ceil().max(1.0) as usize;
        let main_finger_w = main_total_w / fingers_per_main as f64;
        let n_main = family.main_transistors_per_polarity() as usize * fingers_per_main;
        let n_internal = family.internal_transistors_per_polarity() as usize;
        let total_fingers = n_main + n_internal;

        // --- strip split --------------------------------------------------
        // Two-strip cells split their fingers roughly in half between the
        // two diffusion stacks (mains fill strip A first, internals land in
        // strip B) — the layout style real cells use for tall networks.
        let (fingers_a, fingers_b) = if two_strips {
            let a = total_fingers.div_ceil(2);
            (a, total_fingers - a)
        } else {
            (total_fingers, 0)
        };

        // Wiring/column overhead: complex and sequential cells need extra
        // routing columns between stacks.
        let overhead: usize = if family.is_sequential() {
            4
        } else if complexity >= 2 {
            6
        } else if complexity == 1 {
            2
        } else {
            1
        };

        // Overlap columns (only meaningful for overlapped two-strip cells):
        // vertically stacked strips share poly columns. Open-library
        // layouts share a single column; compact commercial layouts stack
        // aggressively — sequential cells most of all.
        let overlap: usize = if !overlapped || fingers_b == 0 {
            0
        } else {
            let want = match style {
                LayoutStyle::Relaxed => drive.multiplier() as usize,
                LayoutStyle::Compact => {
                    if family.is_sequential() {
                        (3 * fingers_b).div_ceil(4)
                    } else {
                        2 + drive.multiplier() as usize / 2
                    }
                }
            };
            want.clamp(1, fingers_a.min(fingers_b))
        };

        let cols = if two_strips {
            fingers_a + fingers_b - overlap + overhead
        } else {
            fingers_a + overhead
        };
        let width = tech.edge_margin * 2.0 + cols as f64 * tech.gate_pitch;

        // --- strips -------------------------------------------------------
        let mut strips = Vec::new();
        let mut transistors = Vec::new();
        let internal_w = tech.base_internal_width;

        // Deterministic per-cell y jitter: in a real (un-restricted) library
        // each cell places its diffusion at whatever y suits its routing, so
        // active regions do NOT line up across cells — this is exactly what
        // the aligned-active transform removes, and what makes the
        // "directional growth, no aligned-active" scenario of Table 1 lose
        // most of the correlation benefit. Quantized to 45 nm legal
        // placement steps.
        let name_hash: u64 = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });

        for fet_type in [FetType::NType, FetType::PType] {
            let (band_lo_raw, band_hi) = match fet_type {
                FetType::NType => tech.n_band,
                FetType::PType => tech.p_band,
            };
            let strip_base = strips.len();
            // Finger widths in placement order: mains first, then internals.
            // Internal devices split ~60/40 between true minimum-width
            // keepers and unit-width clock/feedback inverters — real flops
            // are not built entirely from minimum devices.
            let n_small = (n_internal * 3).div_ceil(5);
            let finger_width = |i: usize| -> f64 {
                if i < n_main {
                    main_finger_w
                } else if i < n_main + n_small {
                    internal_w
                } else {
                    tech.base_main_width
                }
            };
            if two_strips {
                let height_a = (0..fingers_a).map(finger_width).fold(0.0_f64, f64::max);
                let height_b = (fingers_a..total_fingers)
                    .map(finger_width)
                    .fold(0.0_f64, f64::max)
                    .max(internal_w.min(main_finger_w));
                let needed = height_a + tech.strip_gap + height_b;
                let slack = (band_hi - band_lo_raw - needed).max(0.0);
                let step = tech.gate_pitch * 45.0 / 190.0; // 45 nm at the 45 nm node
                let band_lo = band_lo_raw + (step * ((name_hash >> 3) % 8) as f64).min(slack);
                let a_x0 = tech.edge_margin;
                let a_x1 = a_x0 + (fingers_a as f64) * tech.gate_pitch;
                let b_x0 = if overlapped {
                    a_x1 - overlap as f64 * tech.gate_pitch
                } else {
                    a_x1 + tech.gate_pitch
                };
                let b_x1 = b_x0 + (fingers_b.max(1) as f64) * tech.gate_pitch;
                strips.push(ActiveStrip {
                    fet_type,
                    rect: Rect::new(a_x0, band_lo, a_x1 - a_x0, height_a)?,
                    band: 0,
                });
                strips.push(ActiveStrip {
                    fet_type,
                    rect: Rect::new(
                        b_x0,
                        band_lo + height_a + tech.strip_gap,
                        b_x1 - b_x0,
                        height_b,
                    )?,
                    band: 1,
                });
            } else {
                let height = main_finger_w.max(if n_internal > 0 { internal_w } else { 0.0 });
                let slack = (band_hi - band_lo_raw - height).max(0.0);
                let step = tech.gate_pitch * 45.0 / 190.0;
                let band_lo = band_lo_raw + (step * ((name_hash >> 3) % 8) as f64).min(slack);
                let x0 = tech.edge_margin;
                let x1 = x0 + (fingers_a.max(1) as f64) * tech.gate_pitch;
                strips.push(ActiveStrip {
                    fet_type,
                    rect: Rect::new(x0, band_lo, x1 - x0, height)?,
                    band: 0,
                });
            }

            // Transistor records (same placement order as the fingers).
            for i in 0..total_fingers {
                let strip = if two_strips && i >= fingers_a {
                    strip_base + 1
                } else {
                    strip_base
                };
                transistors.push(CellTransistor {
                    fet_type,
                    width: finger_width(i),
                    strip,
                    is_internal: i >= n_main,
                });
            }
        }

        Ok(Self {
            name,
            family,
            drive,
            width,
            height: tech.cell_height,
            transistors,
            strips,
        })
    }

    /// Cell name, e.g. `"AOI222_X1"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Functional family.
    pub fn family(&self) -> CellFamily {
        self.family
    }

    /// Drive strength.
    pub fn drive(&self) -> DriveStrength {
        self.drive
    }

    /// Cell width (nm).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Cell height (nm).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// All transistors.
    pub fn transistors(&self) -> &[CellTransistor] {
        &self.transistors
    }

    /// All active strips (both polarities).
    pub fn strips(&self) -> &[ActiveStrip] {
        &self.strips
    }

    /// n-type strips only.
    pub fn n_strips(&self) -> Vec<&ActiveStrip> {
        self.strips
            .iter()
            .filter(|s| s.fet_type == cnfet_device::FetType::NType)
            .collect()
    }

    /// p-type strips only.
    pub fn p_strips(&self) -> Vec<&ActiveStrip> {
        self.strips
            .iter()
            .filter(|s| s.fet_type == cnfet_device::FetType::PType)
            .collect()
    }

    /// Every transistor width (nm), in declaration order.
    pub fn transistor_widths(&self) -> Vec<f64> {
        self.transistors.iter().map(|t| t.width).collect()
    }

    /// Smallest transistor width in the cell, if it has transistors.
    pub fn min_transistor_width(&self) -> Option<f64> {
        self.transistors
            .iter()
            .map(|t| t.width)
            .min_by(|a, b| a.partial_cmp(b).expect("widths are finite"))
    }

    /// Total gate capacitance under the given model (aF).
    pub fn gate_cap(&self, model: &cnfet_device::GateCapModel) -> f64 {
        model.total_cap(self.transistors.iter().map(|t| t.width))
    }

    /// Whether the cell stores state.
    pub fn is_sequential(&self) -> bool {
        self.family.is_sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnfet_device::FetType;

    fn t45() -> TechParams {
        TechParams::nangate45()
    }

    #[test]
    fn drive_strength_display_and_validation() {
        assert_eq!(DriveStrength::X4.to_string(), "X4");
        assert_eq!(DriveStrength::new(3).unwrap().multiplier(), 3);
        assert!(DriveStrength::new(0).is_err());
    }

    #[test]
    fn inverter_geometry() {
        let c = Cell::synthesize(
            CellFamily::Inv,
            DriveStrength::X1,
            &t45(),
            LayoutStyle::Relaxed,
        )
        .unwrap();
        assert_eq!(c.name(), "INV_X1");
        assert_eq!(c.transistors().len(), 2); // 1 n + 1 p
        assert_eq!(c.n_strips().len(), 1);
        assert_eq!(c.p_strips().len(), 1);
        assert_eq!(c.min_transistor_width(), Some(185.0));
        assert!(c.width() > 0.0);
        assert_eq!(c.height(), 1400.0);
    }

    #[test]
    fn drive_scales_width_until_finger_cap() {
        let t = t45();
        let x1 =
            Cell::synthesize(CellFamily::Inv, DriveStrength::X1, &t, LayoutStyle::Relaxed).unwrap();
        let x2 =
            Cell::synthesize(CellFamily::Inv, DriveStrength::X2, &t, LayoutStyle::Relaxed).unwrap();
        let x8 =
            Cell::synthesize(CellFamily::Inv, DriveStrength::X8, &t, LayoutStyle::Relaxed).unwrap();
        assert_eq!(x1.transistors()[0].width, 185.0);
        assert_eq!(x2.transistors()[0].width, 370.0);
        // X8: 1480 nm total → 4 fingers ≤ 480 nm.
        assert_eq!(x8.transistors().len(), 8);
        assert!(x8.transistors()[0].width <= 480.0);
        let total: f64 = x8
            .transistors()
            .iter()
            .filter(|t| t.fet_type == FetType::NType)
            .map(|t| t.width)
            .sum();
        assert!((total - 1480.0).abs() < 1e-9);
    }

    #[test]
    fn aoi222_has_overlapping_strips_under_relaxed_style() {
        let c = Cell::synthesize(
            CellFamily::Aoi(&[2, 2, 2]),
            DriveStrength::X1,
            &t45(),
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let ns = c.n_strips();
        assert_eq!(ns.len(), 2);
        let (a, b) = (ns[0].rect, ns[1].rect);
        assert!(a.x1() > b.x0(), "strips must overlap in x: {a:?} vs {b:?}");
        assert_ne!(ns[0].band, ns[1].band);
    }

    #[test]
    fn nand2_is_single_strip_and_flop_strips_are_disjoint_when_relaxed() {
        let nand = Cell::synthesize(
            CellFamily::Nand(2),
            DriveStrength::X1,
            &t45(),
            LayoutStyle::Relaxed,
        )
        .unwrap();
        assert_eq!(nand.n_strips().len(), 1);

        let dff = Cell::synthesize(
            CellFamily::Dff {
                reset: false,
                set: false,
                scan: false,
            },
            DriveStrength::X1,
            &t45(),
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let ns = dff.n_strips();
        assert_eq!(ns.len(), 2);
        assert!(
            ns[0].rect.x1() < ns[1].rect.x0(),
            "relaxed flop strips must not overlap in x"
        );
        // The flop carries small internal transistors.
        assert!(dff
            .transistors()
            .iter()
            .any(|t| t.is_internal && t.width == 110.0));
    }

    #[test]
    fn compact_style_overlaps_flop_strips() {
        let dff = Cell::synthesize(
            CellFamily::Dff {
                reset: true,
                set: false,
                scan: true,
            },
            DriveStrength::X1,
            &TechParams::commercial65(),
            LayoutStyle::Compact,
        )
        .unwrap();
        let ns = dff.n_strips();
        assert_eq!(ns.len(), 2);
        assert!(
            ns[0].rect.x1() > ns[1].rect.x0(),
            "compact flop strips should overlap in x"
        );
    }

    #[test]
    fn fill_cells_have_no_transistors() {
        let f = Cell::synthesize(
            CellFamily::Fill,
            DriveStrength::X4,
            &t45(),
            LayoutStyle::Relaxed,
        )
        .unwrap();
        assert!(f.transistors().is_empty());
        assert!(f.strips().is_empty());
        assert_eq!(f.min_transistor_width(), None);
        assert_eq!(f.gate_cap(&cnfet_device::GateCapModel::proportional()), 0.0);
    }

    #[test]
    fn strips_stay_inside_polarity_bands() {
        let t = t45();
        for fam in [
            CellFamily::Inv,
            CellFamily::Aoi(&[2, 2, 2]),
            CellFamily::Dff {
                reset: true,
                set: true,
                scan: true,
            },
        ] {
            for drive in [DriveStrength::X1, DriveStrength::X2] {
                let c = Cell::synthesize(fam, drive, &t, LayoutStyle::Relaxed).unwrap();
                for s in c.strips() {
                    let (lo, hi) = match s.fet_type {
                        FetType::NType => t.n_band,
                        FetType::PType => t.p_band,
                    };
                    assert!(
                        s.rect.y0() >= lo - 1e-9 && s.rect.y1() <= hi + 1e-9,
                        "{}: strip {:?} escapes band ({lo}, {hi})",
                        c.name(),
                        s.rect
                    );
                }
            }
        }
    }

    #[test]
    fn scaled_tech_shrinks_widths_linearly() {
        let t45 = TechParams::nangate45();
        let t22 = t45.scaled_to(22.0);
        let c45 = Cell::synthesize(
            CellFamily::Inv,
            DriveStrength::X1,
            &t45,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let c22 = Cell::synthesize(
            CellFamily::Inv,
            DriveStrength::X1,
            &t22,
            LayoutStyle::Relaxed,
        )
        .unwrap();
        let ratio = c22.transistors()[0].width / c45.transistors()[0].width;
        assert!((ratio - 22.0 / 45.0).abs() < 1e-9);
    }
}
