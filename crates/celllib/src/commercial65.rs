//! Synthetic "commercial 65 nm" library (775 cells).
//!
//! The paper's second evaluation target is a proprietary commercial 65 nm
//! library with 775 cells of which ~20 % suffer area penalties under the
//! single-grid aligned-active restriction (Table 2). Commercial libraries
//! reach such cell counts by multiplying each function across threshold
//! flavors (LVT/SVT/HVT) and wide drive ranges, and they pack diffusion much
//! more aggressively than open libraries — which is exactly why more of
//! their cells collide with the alignment grid.
//!
//! This generator reproduces that *structure*: three VT flavors, dense drive
//! ranges, a rich sequential roster, and [`LayoutStyle::Compact`] packing
//! (all multi-strip cells overlap in x). The absolute cell contents are
//! synthetic; Table 2's reproduction reports our measured fractions next to
//! the paper's.

use crate::cell::{Cell, DriveStrength, LayoutStyle, TechParams};
use crate::family::CellFamily;
use crate::library::CellLibrary;

/// VT flavor tags used in cell names.
const VT_FLAVORS: [&str; 3] = ["LVT", "SVT", "HVT"];

fn drives(list: &[u16]) -> Vec<DriveStrength> {
    list.iter()
        .map(|&m| DriveStrength::new(m).expect("non-zero drive"))
        .collect()
}

/// Simple (single-strip) groups: (name base, family, drive multipliers).
///
/// Commercial libraries multiply functions across auxiliary variants
/// (clock-tree flavors, delay cells, inverted-input gates); the structural
/// geometry of each variant matches its base family.
fn simple_roster() -> Vec<(&'static str, CellFamily, Vec<u16>)> {
    use CellFamily as F;
    let wide: Vec<u16> = vec![1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32];
    let mid: Vec<u16> = vec![1, 2, 3, 4, 6, 8, 12, 16];
    let tri: Vec<u16> = vec![1, 2, 4];
    let quad: Vec<u16> = vec![1, 2, 4, 8];
    vec![
        ("INV", F::Inv, wide.clone()),
        ("CLKINV", F::Inv, mid.clone()),
        ("BUF", F::Buf, wide.clone()),
        ("BUFH", F::Buf, mid.clone()),
        ("DLY2", F::Buf, tri.clone()),
        ("DLY4", F::Buf, tri.clone()),
        ("DLY8", F::Buf, tri.clone()),
        ("CLKBUF", F::ClkBuf, mid.clone()),
        ("NAND2", F::Nand(2), mid.clone()),
        ("NAND2B", F::Nand(2), tri.clone()),
        ("NAND3", F::Nand(3), mid.clone()),
        ("NOR2", F::Nor(2), mid.clone()),
        ("NOR2B", F::Nor(2), tri.clone()),
        ("NOR3", F::Nor(3), mid.clone()),
        ("AND2", F::And(2), mid.clone()),
        ("AND2B", F::And(2), tri.clone()),
        ("AND3", F::And(3), mid.clone()),
        ("OR2", F::Or(2), mid.clone()),
        ("OR2B", F::Or(2), tri.clone()),
        ("OR3", F::Or(3), mid.clone()),
        ("AO21", F::Aoi(&[2, 1]), tri.clone()),
        ("OA21", F::Oai(&[2, 1]), tri.clone()),
        ("AOI21", F::Aoi(&[2, 1]), mid.clone()),
        ("OAI21", F::Oai(&[2, 1]), mid.clone()),
        ("AOI211", F::Aoi(&[2, 1, 1]), tri.clone()),
        ("OAI211", F::Oai(&[2, 1, 1]), tri.clone()),
        ("XOR2", F::Xor2, mid.clone()),
        ("XNOR2", F::Xnor2, mid.clone()),
        ("MUX2", F::Mux(2), mid.clone()),
        ("MXI2", F::Mux(2), tri.clone()),
        ("TBUF", F::TriBuf, quad.clone()),
        ("TINV", F::TriInv, quad),
    ]
}

/// Complex (multi-strip, compact-packed) groups.
fn complex_roster() -> Vec<(&'static str, CellFamily, Vec<u16>)> {
    use CellFamily as F;
    let duo: Vec<u16> = vec![1, 2];
    let tri: Vec<u16> = vec![1, 2, 4];
    vec![
        ("NAND4", F::Nand(4), tri.clone()),
        ("NOR4", F::Nor(4), tri.clone()),
        ("AND4", F::And(4), tri.clone()),
        ("OR4", F::Or(4), tri.clone()),
        ("AOI22", F::Aoi(&[2, 2]), tri.clone()),
        ("OAI22", F::Oai(&[2, 2]), tri.clone()),
        ("AOI221", F::Aoi(&[2, 2, 1]), duo.clone()),
        ("OAI221", F::Oai(&[2, 2, 1]), duo.clone()),
        ("AOI222", F::Aoi(&[2, 2, 2]), duo.clone()),
        ("OAI222", F::Oai(&[2, 2, 2]), duo.clone()),
        ("OAI33", F::Oai(&[3, 3]), vec![1]),
        ("MUX4", F::Mux(4), duo.clone()),
        ("HA", F::HalfAdder, duo.clone()),
        ("FA", F::FullAdder, duo),
    ]
}

/// Sequential groups (all compact-packed -> overlapped).
fn sequential_roster() -> Vec<(&'static str, CellFamily, Vec<u16>)> {
    use CellFamily as F;
    let duo: Vec<u16> = vec![1, 2];
    let mut v: Vec<(&'static str, CellFamily, Vec<u16>)> = Vec::new();
    for reset in [false, true] {
        for set in [false, true] {
            for scan in [false, true] {
                // Names derive from the family prefix at build time.
                v.push(("", F::Dff { reset, set, scan }, duo.clone()));
            }
        }
    }
    v.push(("DLH", F::Latch { active_high: true }, duo.clone()));
    v.push(("DLL", F::Latch { active_high: false }, duo.clone()));
    v.push(("CLKGATE", F::ClkGate, vec![1, 2, 4, 8]));
    v
}

/// Build the 775-cell commercial-65-class library.
///
/// # Panics
///
/// Panics only if the internal roster is inconsistent (covered by tests).
pub fn commercial65_like() -> CellLibrary {
    let tech = TechParams::commercial65();
    let mut cells = Vec::new();

    // VT-flavored functional cells.
    for vt in VT_FLAVORS {
        for (base, family, mults) in simple_roster()
            .into_iter()
            .chain(complex_roster())
            .chain(sequential_roster())
        {
            let base = if base.is_empty() {
                family.prefix()
            } else {
                base.to_string()
            };
            for d in drives(&mults) {
                let name = format!("{base}_{vt}_{d}");
                cells.push(
                    Cell::synthesize_named(name, family, d, &tech, LayoutStyle::Compact)
                        .expect("roster geometry is valid"),
                );
            }
        }
    }

    // Physical-only cells (no VT flavor): ties, fillers, antennas.
    use CellFamily as F;
    for (family, mults) in [
        (F::Logic0, vec![1]),
        (F::Logic1, vec![1]),
        (F::Antenna, vec![1, 2, 4]),
        (F::Fill, vec![1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64]),
    ] {
        for d in drives(&mults) {
            cells.push(
                Cell::synthesize(family, d, &tech, LayoutStyle::Compact)
                    .expect("roster geometry is valid"),
            );
        }
    }

    // Trim or pad deterministically to exactly 775 cells: the roster above
    // is sized to land slightly over; excess fillers are dropped from the
    // tail (they carry no transistors, so no analysis is affected).
    while cells.len() > 775 {
        let last_fill = cells
            .iter()
            .rposition(|c| c.family() == F::Fill || c.family() == F::Antenna);
        match last_fill {
            Some(i) => {
                cells.remove(i);
            }
            None => break,
        }
    }
    let mut pad = 0u16;
    while cells.len() < 775 {
        pad += 1;
        let d = DriveStrength::new(64 + pad).expect("non-zero");
        cells.push(
            Cell::synthesize(F::Fill, d, &tech, LayoutStyle::Compact)
                .expect("filler geometry is valid"),
        );
    }

    CellLibrary::new("commercial65-like", tech, LayoutStyle::Compact, cells)
        .expect("roster names are unique")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_775_cells() {
        let lib = commercial65_like();
        assert_eq!(lib.cells().len(), 775, "paper: 775 cells");
    }

    #[test]
    fn about_twenty_percent_overlapped() {
        // Paper Table 2: ~20 % of cells have an area penalty under the
        // single-grid restriction; overlapped strips are the geometric
        // precondition for that.
        let lib = commercial65_like();
        let frac = lib.overlapped_cells().len() as f64 / lib.cells().len() as f64;
        assert!(
            (0.15..0.25).contains(&frac),
            "overlapped fraction {frac:.3} (want ≈ 0.20)"
        );
    }

    #[test]
    fn vt_flavors_present() {
        let lib = commercial65_like();
        for name in ["INV_LVT_X1", "INV_SVT_X1", "INV_HVT_X1", "SDFFRS_SVT_X2"] {
            assert!(lib.cell(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn widths_scale_with_node() {
        let lib65 = commercial65_like();
        // 65 nm internals: 110 × 65/45 ≈ 158.9 nm.
        let w = lib65.min_transistor_width().unwrap();
        assert!((w - 110.0 * 65.0 / 45.0).abs() < 0.5, "min width {w}");
    }
}
