//! Exhaustive structural invariants over every cell of both libraries.

use cnfet_celllib::cell::{Cell, DriveStrength, LayoutStyle, TechParams};
use cnfet_celllib::commercial65::commercial65_like;
use cnfet_celllib::nangate45::nangate45_like;
use cnfet_celllib::CellFamily;
use cnfet_device::{FetType, GateCapModel};

fn libraries() -> Vec<cnfet_celllib::CellLibrary> {
    vec![nangate45_like(), commercial65_like()]
}

#[test]
fn every_strip_lies_inside_its_polarity_band() {
    for lib in libraries() {
        let tech = lib.tech();
        for cell in lib.cells() {
            for s in cell.strips() {
                let (lo, hi) = match s.fet_type {
                    FetType::NType => tech.n_band,
                    FetType::PType => tech.p_band,
                };
                assert!(
                    s.rect.y0() >= lo - 1e-9 && s.rect.y1() <= hi + 1e-9,
                    "{} / {}: strip y [{}, {}] outside band [{lo}, {hi}]",
                    lib.name(),
                    cell.name(),
                    s.rect.y0(),
                    s.rect.y1()
                );
                assert!(
                    s.rect.x0() >= 0.0 && s.rect.x1() <= cell.width() + 1e-9,
                    "{} / {}: strip x outside cell",
                    lib.name(),
                    cell.name()
                );
            }
        }
    }
}

#[test]
fn every_transistor_references_a_strip_of_its_polarity() {
    for lib in libraries() {
        for cell in lib.cells() {
            for t in cell.transistors() {
                let strip = &cell.strips()[t.strip];
                assert_eq!(
                    strip.fet_type,
                    t.fet_type,
                    "{} / {}: transistor in wrong-polarity strip",
                    lib.name(),
                    cell.name()
                );
                assert!(t.width > 0.0 && t.width.is_finite());
                // Fingers must fit inside their strip's height.
                assert!(
                    t.width <= strip.rect.height() + 1e-9,
                    "{} / {}: finger {} exceeds strip height {}",
                    lib.name(),
                    cell.name(),
                    t.width,
                    strip.rect.height()
                );
            }
        }
    }
}

#[test]
fn polarity_populations_are_symmetric() {
    // The CNFET libraries are built symmetric (equal n/p drive): equal
    // transistor counts and total width per polarity in every cell.
    for lib in libraries() {
        for cell in lib.cells() {
            let count = |ft: FetType| {
                cell.transistors()
                    .iter()
                    .filter(|t| t.fet_type == ft)
                    .count()
            };
            let width = |ft: FetType| -> f64 {
                cell.transistors()
                    .iter()
                    .filter(|t| t.fet_type == ft)
                    .map(|t| t.width)
                    .sum()
            };
            assert_eq!(
                count(FetType::NType),
                count(FetType::PType),
                "{}: asymmetric transistor counts",
                cell.name()
            );
            assert!(
                (width(FetType::NType) - width(FetType::PType)).abs() < 1e-9,
                "{}: asymmetric total width",
                cell.name()
            );
        }
    }
}

#[test]
fn gate_cap_equals_total_width_under_proportional_model() {
    let model = GateCapModel::proportional();
    for lib in libraries() {
        for cell in lib.cells() {
            let total: f64 = cell.transistor_widths().iter().sum();
            assert!(
                (cell.gate_cap(&model) - total).abs() < 1e-9,
                "{}: cap mismatch",
                cell.name()
            );
        }
    }
}

#[test]
fn drive_strength_orders_cell_width_within_family() {
    let lib = nangate45_like();
    for (lo, hi) in [
        ("INV_X1", "INV_X8"),
        ("NAND2_X1", "NAND2_X4"),
        ("BUF_X2", "BUF_X32"),
    ] {
        let a = lib.cell(lo).expect("present");
        let b = lib.cell(hi).expect("present");
        assert!(
            a.width() <= b.width(),
            "{lo} ({}) wider than {hi} ({})",
            a.width(),
            b.width()
        );
        let wa: f64 = a.transistor_widths().iter().sum();
        let wb: f64 = b.transistor_widths().iter().sum();
        assert!(wa < wb, "{lo} drive not below {hi}");
    }
}

#[test]
fn synthesis_is_deterministic() {
    let tech = TechParams::nangate45();
    let a = Cell::synthesize(
        CellFamily::Aoi(&[2, 2, 2]),
        DriveStrength::X2,
        &tech,
        LayoutStyle::Relaxed,
    )
    .expect("valid");
    let b = Cell::synthesize(
        CellFamily::Aoi(&[2, 2, 2]),
        DriveStrength::X2,
        &tech,
        LayoutStyle::Relaxed,
    )
    .expect("valid");
    assert_eq!(a, b);
}

#[test]
fn jitter_spreads_strip_positions_across_cells() {
    // The library-native (pre-alignment) y positions must NOT all agree —
    // that scatter is what the aligned-active restriction removes, and
    // what Table 1's middle scenario measures.
    let lib = nangate45_like();
    let mut y_positions: Vec<f64> = lib
        .cells()
        .iter()
        .filter_map(|c| c.n_strips().first().map(|s| s.rect.y0()))
        .collect();
    y_positions.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    y_positions.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    assert!(
        y_positions.len() >= 4,
        "expected scattered strip positions, got {y_positions:?}"
    );
}
