//! Gate-level netlist intermediate representation.

/// A net (wire) in the design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Index of the driving instance (`None` for primary inputs).
    pub driver: Option<usize>,
    /// Indices of instances whose inputs this net feeds.
    pub sinks: Vec<usize>,
}

impl Net {
    /// Fanout of the net.
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }
}

/// One placed-and-routed-agnostic cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name (hierarchical, e.g. `"alu/add/U42"`).
    pub name: String,
    /// Referenced library cell name (e.g. `"NAND2_X1"`).
    pub cell: String,
    /// Module tag for reporting (e.g. `"alu"`).
    pub module: String,
}

/// A flat gate-level netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    /// All instances.
    pub instances: Vec<Instance>,
    /// All nets.
    pub nets: Vec<Net>,
}

impl Netlist {
    /// Create an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            instances: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Count instances per referenced cell name.
    pub fn cell_usage(&self) -> std::collections::HashMap<&str, usize> {
        let mut map = std::collections::HashMap::new();
        for inst in &self.instances {
            *map.entry(inst.cell.as_str()).or_insert(0) += 1;
        }
        map
    }

    /// Count instances per module tag.
    pub fn module_usage(&self) -> std::collections::HashMap<&str, usize> {
        let mut map = std::collections::HashMap::new();
        for inst in &self.instances {
            *map.entry(inst.module.as_str()).or_insert(0) += 1;
        }
        map
    }

    /// Mean net fanout (0 for a netlist without nets).
    pub fn mean_fanout(&self) -> f64 {
        if self.nets.is_empty() {
            return 0.0;
        }
        self.nets.iter().map(Net::fanout).sum::<usize>() as f64 / self.nets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut n = Netlist::new("t");
        n.instances.push(Instance {
            name: "U1".into(),
            cell: "INV_X1".into(),
            module: "alu".into(),
        });
        n.instances.push(Instance {
            name: "U2".into(),
            cell: "INV_X1".into(),
            module: "ctrl".into(),
        });
        n.instances.push(Instance {
            name: "U3".into(),
            cell: "NAND2_X1".into(),
            module: "alu".into(),
        });
        n.nets.push(Net {
            name: "n1".into(),
            driver: Some(0),
            sinks: vec![1, 2],
        });
        n.nets.push(Net {
            name: "n2".into(),
            driver: None,
            sinks: vec![0],
        });
        n
    }

    #[test]
    fn usage_maps() {
        let n = sample();
        assert_eq!(n.instance_count(), 3);
        assert_eq!(n.cell_usage()["INV_X1"], 2);
        assert_eq!(n.cell_usage()["NAND2_X1"], 1);
        assert_eq!(n.module_usage()["alu"], 2);
    }

    #[test]
    fn fanout() {
        let n = sample();
        assert_eq!(n.nets[0].fanout(), 2);
        assert!((n.mean_fanout() - 1.5).abs() < 1e-12);
        assert_eq!(Netlist::new("e").mean_fanout(), 0.0);
    }
}
