//! Technology mapping: resolving netlist instances against a cell library
//! and extracting the transistor-width statistics the yield models consume.

use crate::ir::Netlist;
use crate::{NetlistError, Result};
use cnfet_celllib::{Cell, CellLibrary};
use cnt_stats::Histogram;

/// A netlist bound to a concrete library.
#[derive(Debug, Clone)]
pub struct MappedDesign<'a> {
    netlist: &'a Netlist,
    cells: Vec<&'a Cell>,
}

impl<'a> MappedDesign<'a> {
    /// Resolve every instance's cell in `lib`.
    ///
    /// Names are matched exactly first; if absent, the default VT flavor
    /// tag `SVT` is inserted (`NAND2_X1` → `NAND2_SVT_X1`) so that designs
    /// synthesized against the open-library naming can be re-targeted to
    /// the commercial-library naming — mirroring how a real flow swaps
    /// libraries without re-synthesis.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnmappedCell`] naming the first instance
    /// whose cell is missing under both conventions.
    pub fn map(netlist: &'a Netlist, lib: &'a CellLibrary) -> Result<Self> {
        let mut cells = Vec::with_capacity(netlist.instances.len());
        for inst in &netlist.instances {
            let cell = lib.cell(&inst.cell).or_else(|| {
                inst.cell
                    .rsplit_once("_X")
                    .and_then(|(base, drive)| lib.cell(&format!("{base}_SVT_X{drive}")))
            });
            match cell {
                Some(c) => cells.push(c),
                None => {
                    return Err(NetlistError::UnmappedCell {
                        instance: inst.name.clone(),
                        cell: inst.cell.clone(),
                    })
                }
            }
        }
        Ok(Self { netlist, cells })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Per-instance resolved cells (parallel to `netlist().instances`).
    pub fn cells(&self) -> &[&'a Cell] {
        &self.cells
    }

    /// Total transistor count of the design.
    pub fn transistor_count(&self) -> usize {
        self.cells.iter().map(|c| c.transistors().len()).sum()
    }

    /// Every transistor width in the design (nm).
    pub fn transistor_widths(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.transistor_count());
        for c in &self.cells {
            v.extend(c.transistors().iter().map(|t| t.width));
        }
        v
    }

    /// The paper-Fig-2.2a histogram: transistor widths in `bin_width`-nm
    /// bins from 0 to `max_width`.
    ///
    /// # Errors
    ///
    /// Propagates histogram construction errors (invalid bounds).
    pub fn width_histogram(&self, bin_width: f64, max_width: f64) -> Result<Histogram> {
        let nbins = (max_width / bin_width).ceil() as usize;
        let mut h = Histogram::new(0.0, nbins as f64 * bin_width, nbins)?;
        h.extend(self.transistor_widths());
        Ok(h)
    }

    /// Fraction of transistors with width strictly below `w` — the `M_min`
    /// share of Sec. 2.2 (the paper's case study: 33 % below `W_min`).
    pub fn fraction_below(&self, w: f64) -> f64 {
        let total = self.transistor_count();
        if total == 0 {
            return 0.0;
        }
        let below = self
            .cells
            .iter()
            .flat_map(|c| c.transistors())
            .filter(|t| t.width < w)
            .count();
        below as f64 / total as f64
    }

    /// Total gate capacitance (aF) under a capacitance model.
    pub fn total_gate_cap(&self, model: &cnfet_device::GateCapModel) -> f64 {
        self.cells.iter().map(|c| c.gate_cap(model)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{openrisc_class, DesignSpec};
    use cnfet_celllib::commercial65::commercial65_like;
    use cnfet_celllib::nangate45::nangate45_like;

    #[test]
    fn maps_onto_nangate() {
        let lib = nangate45_like();
        let n = openrisc_class(&DesignSpec::small(), 1);
        let mapped = MappedDesign::map(&n, &lib).unwrap();
        assert_eq!(mapped.cells().len(), n.instance_count());
        assert!(mapped.transistor_count() > 5_000);
    }

    #[test]
    fn maps_onto_commercial65_via_svt_fallback() {
        let lib = commercial65_like();
        let n = openrisc_class(&DesignSpec::small(), 1);
        let mapped = MappedDesign::map(&n, &lib).unwrap();
        assert!(mapped.transistor_count() > 5_000);
        // Widths must be 65/45 larger than the Nangate mapping.
        let lib45 = nangate45_like();
        let m45 = MappedDesign::map(&n, &lib45).unwrap();
        let w65: f64 =
            mapped.transistor_widths().iter().sum::<f64>() / mapped.transistor_count() as f64;
        let w45: f64 = m45.transistor_widths().iter().sum::<f64>() / m45.transistor_count() as f64;
        assert!(
            ((w65 / w45) - 65.0 / 45.0).abs() < 0.01,
            "scaling {w65}/{w45}"
        );
    }

    #[test]
    fn unmapped_cell_is_reported() {
        let lib = nangate45_like();
        let mut n = openrisc_class(&DesignSpec::small(), 1);
        n.instances[0].cell = "NAND9_X9".into();
        match MappedDesign::map(&n, &lib) {
            Err(NetlistError::UnmappedCell { cell, .. }) => assert_eq!(cell, "NAND9_X9"),
            other => panic!("expected UnmappedCell, got {other:?}"),
        }
    }

    #[test]
    fn fig22a_calibration_one_third_small() {
        // The headline calibration: ≈33 % of transistors below ≈160 nm
        // (the two leftmost 80-nm bins of paper Fig 2.2a).
        let lib = nangate45_like();
        let n = openrisc_class(&DesignSpec::openrisc(), 42);
        let mapped = MappedDesign::map(&n, &lib).unwrap();
        let frac = mapped.fraction_below(160.0);
        assert!(
            (0.28..0.38).contains(&frac),
            "fraction below 160 nm: {frac:.3} (want ≈ 0.33)"
        );
        // And the histogram's two leftmost bins match that fraction.
        let h = mapped.width_histogram(80.0, 480.0).unwrap();
        let two_bins = h.bin_fraction(0) + h.bin_fraction(1);
        assert!((two_bins - frac).abs() < 0.02, "bins {two_bins} vs {frac}");
    }

    #[test]
    fn gate_cap_is_positive_and_scales() {
        let lib = nangate45_like();
        let n = openrisc_class(&DesignSpec::small(), 9);
        let mapped = MappedDesign::map(&n, &lib).unwrap();
        let model = cnfet_device::GateCapModel::proportional();
        let cap = mapped.total_gate_cap(&model);
        let mean_w =
            mapped.transistor_widths().iter().sum::<f64>() / mapped.transistor_count() as f64;
        assert!((cap - mean_w * mapped.transistor_count() as f64).abs() < 1.0);
    }
}
