//! # cnfet-netlist
//!
//! Gate-level netlist IR, a synthetic OpenRISC-class design generator, and
//! technology mapping onto a CNFET standard-cell library.
//!
//! The paper's case study is "an OpenRISC processor design (cache not
//! included) synthesized with the Nangate 45 nm Open Cell Library using
//! Synopsys Design Compiler". Neither the RTL flow nor the tool is
//! reproducible here, but the yield analysis consumes only two artifacts of
//! that flow:
//!
//! 1. the **transistor width distribution** (paper Fig 2.2a, with 33 % of
//!    transistors in the two leftmost bins), and
//! 2. the **linear density of small-width CNFETs per placement row**
//!    (`P_min-CNFET ≈ 1.8 FET/µm`).
//!
//! [`synth::openrisc_class`] generates a netlist whose module mix (ALU,
//! register file, decoder, control, load-store unit, …) is calibrated to
//! reproduce those two statistics when mapped onto the Nangate-45-class
//! library ([`mapping::MappedDesign`]).
//!
//! ## Example
//!
//! ```
//! use cnfet_netlist::synth::{openrisc_class, DesignSpec};
//! use cnfet_netlist::mapping::MappedDesign;
//! use cnfet_celllib::nangate45::nangate45_like;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = nangate45_like();
//! let netlist = openrisc_class(&DesignSpec::small(), 42);
//! let mapped = MappedDesign::map(&netlist, &lib)?;
//! assert!(mapped.transistor_count() > 10_000);
//! # Ok(())
//! # }
//! ```

pub mod ir;
pub mod mapping;
pub mod synth;
pub mod verilog;

use std::error::Error;
use std::fmt;

/// Error type for netlist operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// An instance references a cell the library does not provide.
    UnmappedCell {
        /// Instance name.
        instance: String,
        /// Cell name that was not found.
        cell: String,
    },
    /// Structural-Verilog text could not be parsed.
    Parse {
        /// 1-based line number (0 when post-resolution).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying statistics error.
    Stats(cnt_stats::StatsError),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter `{name}` = {value}: {constraint}"),
            NetlistError::UnmappedCell { instance, cell } => {
                write!(f, "instance `{instance}` references unknown cell `{cell}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "verilog parse error at line {line}: {message}")
            }
            NetlistError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for NetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetlistError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnt_stats::StatsError> for NetlistError {
    fn from(e: cnt_stats::StatsError) -> Self {
        NetlistError::Stats(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NetlistError>;

pub use ir::{Instance, Net, Netlist};
pub use mapping::MappedDesign;
pub use synth::{openrisc_class, DesignSpec};
