//! Synthetic OpenRISC-class design generator.
//!
//! Emulates the *output* of "OpenRISC (no caches) synthesized with Design
//! Compiler onto the Nangate 45 nm library": a flat gate-level netlist with
//! a realistic module breakdown, gate mix, drive-strength mix and
//! sequential fraction. The generator is deterministic given its seed.
//!
//! Calibration targets (checked by tests):
//!
//! * mapped onto the Nangate-45-class library, about **33 %** of
//!   transistors fall below ≈160 nm (the two leftmost bins of paper
//!   Fig 2.2a);
//! * placed at default utilization, the density of those small CNFETs is
//!   **≈1.8 per µm** of row (paper Sec. 3.3).

use crate::ir::{Instance, Net, Netlist};
use cnfet_celllib::CellFamily;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One entry of the synthesis gate mix.
#[derive(Debug, Clone, Copy)]
struct MixEntry {
    family: CellFamily,
    /// Relative weight among its class (combinational or sequential).
    weight: f64,
    /// Drive multipliers available for this family in the target library.
    drives: &'static [u16],
}

/// Combinational gate mix of a control/datapath processor core, loosely
/// following published standard-cell usage statistics for RISC cores.
const COMB_MIX: &[MixEntry] = &[
    MixEntry {
        family: CellFamily::Inv,
        weight: 0.14,
        drives: &[1, 2, 4, 8],
    },
    MixEntry {
        family: CellFamily::Buf,
        weight: 0.05,
        drives: &[1, 2, 4, 8],
    },
    MixEntry {
        family: CellFamily::Nand(2),
        weight: 0.17,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Nor(2),
        weight: 0.11,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Nand(3),
        weight: 0.05,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Nor(3),
        weight: 0.03,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Nand(4),
        weight: 0.02,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Nor(4),
        weight: 0.01,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::And(2),
        weight: 0.04,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Or(2),
        weight: 0.03,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Aoi(&[2, 1]),
        weight: 0.09,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Oai(&[2, 1]),
        weight: 0.09,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Aoi(&[2, 2]),
        weight: 0.04,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Oai(&[2, 2]),
        weight: 0.04,
        drives: &[1, 2, 4],
    },
    MixEntry {
        family: CellFamily::Aoi(&[2, 2, 1]),
        weight: 0.012,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Oai(&[2, 2, 1]),
        weight: 0.012,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Aoi(&[2, 2, 2]),
        weight: 0.006,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Oai(&[2, 2, 2]),
        weight: 0.006,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Xor2,
        weight: 0.03,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Xnor2,
        weight: 0.02,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Mux(2),
        weight: 0.05,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::HalfAdder,
        weight: 0.01,
        drives: &[1],
    },
    MixEntry {
        family: CellFamily::FullAdder,
        weight: 0.014,
        drives: &[1],
    },
];

/// Sequential mix: mostly plain/reset flops, some scan, few latches.
const SEQ_MIX: &[MixEntry] = &[
    MixEntry {
        family: CellFamily::Dff {
            reset: false,
            set: false,
            scan: false,
        },
        weight: 0.35,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Dff {
            reset: true,
            set: false,
            scan: false,
        },
        weight: 0.30,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Dff {
            reset: false,
            set: false,
            scan: true,
        },
        weight: 0.15,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Dff {
            reset: true,
            set: false,
            scan: true,
        },
        weight: 0.12,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::Latch { active_high: true },
        weight: 0.04,
        drives: &[1, 2],
    },
    MixEntry {
        family: CellFamily::ClkGate,
        weight: 0.04,
        drives: &[1, 2, 4],
    },
];

/// Drive-strength distribution of a timing-driven synthesis run (heavily
/// skewed to X1; capped per family by its available drives).
const DRIVE_WEIGHTS: &[(u16, f64)] = &[(1, 0.62), (2, 0.24), (4, 0.10), (8, 0.04)];

/// A module of the design with its share of instances and flop fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSpec {
    /// Module tag (e.g. `"alu"`).
    pub name: &'static str,
    /// Relative share of design instances.
    pub weight: f64,
    /// Fraction of the module's instances that are sequential.
    pub seq_fraction: f64,
}

/// Design-level generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Design name.
    pub name: &'static str,
    /// Total instance count to generate.
    pub instances: usize,
    /// Module breakdown.
    pub modules: Vec<ModuleSpec>,
}

impl DesignSpec {
    /// The OpenRISC-class case-study design (≈25 k instances ≈ 190 k
    /// transistors; statistics are scale-invariant beyond ~10 k instances).
    pub fn openrisc() -> Self {
        Self {
            name: "openrisc-class",
            instances: 25_000,
            modules: Self::or1200_modules(),
        }
    }

    /// A small variant for tests and doctests (≈3 k instances).
    pub fn small() -> Self {
        Self {
            name: "openrisc-class-small",
            instances: 3_000,
            modules: Self::or1200_modules(),
        }
    }

    fn or1200_modules() -> Vec<ModuleSpec> {
        vec![
            ModuleSpec {
                name: "alu",
                weight: 0.13,
                seq_fraction: 0.02,
            },
            ModuleSpec {
                name: "mult_mac",
                weight: 0.11,
                seq_fraction: 0.08,
            },
            ModuleSpec {
                name: "regfile",
                weight: 0.18,
                seq_fraction: 0.55,
            },
            ModuleSpec {
                name: "decode_ctrl",
                weight: 0.16,
                seq_fraction: 0.10,
            },
            ModuleSpec {
                name: "lsu",
                weight: 0.09,
                seq_fraction: 0.12,
            },
            ModuleSpec {
                name: "except_sprs",
                weight: 0.12,
                seq_fraction: 0.22,
            },
            ModuleSpec {
                name: "if_id_pipeline",
                weight: 0.13,
                seq_fraction: 0.35,
            },
            ModuleSpec {
                name: "wb_freeze",
                weight: 0.08,
                seq_fraction: 0.15,
            },
        ]
    }

    /// Overall sequential fraction implied by the module mix.
    pub fn seq_fraction(&self) -> f64 {
        let total: f64 = self.modules.iter().map(|m| m.weight).sum();
        self.modules
            .iter()
            .map(|m| m.weight * m.seq_fraction)
            .sum::<f64>()
            / total
    }
}

fn pick_weighted<'a>(entries: &'a [MixEntry], rng: &mut StdRng) -> &'a MixEntry {
    let total: f64 = entries.iter().map(|e| e.weight).sum();
    let mut u = rng.gen::<f64>() * total;
    for e in entries {
        u -= e.weight;
        if u <= 0.0 {
            return e;
        }
    }
    entries.last().expect("mix tables are non-empty")
}

fn pick_drive(allowed: &[u16], rng: &mut StdRng) -> u16 {
    // Sample the global drive distribution, then clamp down to the largest
    // allowed multiplier not exceeding the sample (synthesis picks the
    // closest available size).
    let total: f64 = DRIVE_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    let mut sampled = 1u16;
    for &(d, w) in DRIVE_WEIGHTS {
        u -= w;
        if u <= 0.0 {
            sampled = d;
            break;
        }
    }
    *allowed
        .iter()
        .filter(|&&d| d <= sampled)
        .max()
        .unwrap_or(allowed.first().expect("drive lists are non-empty"))
}

/// Generate an OpenRISC-class gate-level netlist.
///
/// Deterministic for a given `(spec, seed)`; cell names follow the
/// Nangate-45-class roster of `cnfet-celllib`.
pub fn openrisc_class(spec: &DesignSpec, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut netlist = Netlist::new(spec.name);
    let total_weight: f64 = spec.modules.iter().map(|m| m.weight).sum();

    for module in &spec.modules {
        let count = ((module.weight / total_weight) * spec.instances as f64).round() as usize;
        for k in 0..count {
            let is_seq = rng.gen::<f64>() < module.seq_fraction;
            let entry = if is_seq {
                pick_weighted(SEQ_MIX, &mut rng)
            } else {
                pick_weighted(COMB_MIX, &mut rng)
            };
            let drive = pick_drive(entry.drives, &mut rng);
            let cell = format!("{}_X{}", entry.family.prefix(), drive);
            netlist.instances.push(Instance {
                name: format!("{}/U{}", module.name, k),
                cell,
                module: module.name.to_string(),
            });
        }
    }

    // Simple DAG wiring: each instance drives one net whose sinks are
    // later instances (fanout ~ truncated geometric, mean ≈ 2.5).
    let n = netlist.instances.len();
    for i in 0..n {
        let mut sinks = Vec::new();
        if i + 1 < n {
            let mut fanout = 1usize;
            while fanout < 8 && rng.gen::<f64>() < 0.6 {
                fanout += 1;
            }
            for _ in 0..fanout {
                sinks.push(i + 1 + rng.gen_range(0..(n - i - 1).max(1)).min(n - i - 2));
            }
            sinks.sort_unstable();
            sinks.dedup();
        }
        netlist.nets.push(Net {
            name: format!("n{i}"),
            driver: Some(i),
            sinks,
        });
    }
    netlist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = openrisc_class(&DesignSpec::small(), 7);
        let b = openrisc_class(&DesignSpec::small(), 7);
        assert_eq!(a, b);
        let c = openrisc_class(&DesignSpec::small(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn instance_count_close_to_spec() {
        let spec = DesignSpec::small();
        let n = openrisc_class(&spec, 1);
        let count = n.instance_count() as f64;
        assert!(
            ((count - spec.instances as f64).abs() / spec.instances as f64) < 0.01,
            "count {count}"
        );
    }

    #[test]
    fn sequential_fraction_matches_modules() {
        let spec = DesignSpec::openrisc();
        let n = openrisc_class(&spec, 2);
        let seq = n
            .instances
            .iter()
            .filter(|i| {
                i.cell.starts_with("DFF")
                    || i.cell.starts_with("SDFF")
                    || i.cell.starts_with("DLH")
                    || i.cell.starts_with("DLL")
                    || i.cell.starts_with("CLKGATE")
            })
            .count() as f64
            / n.instance_count() as f64;
        let want = spec.seq_fraction();
        assert!(
            (seq - want).abs() < 0.02,
            "seq fraction {seq} vs spec {want}"
        );
    }

    #[test]
    fn x1_dominates_drive_mix() {
        let n = openrisc_class(&DesignSpec::openrisc(), 3);
        let x1 = n
            .instances
            .iter()
            .filter(|i| i.cell.ends_with("_X1"))
            .count() as f64
            / n.instance_count() as f64;
        assert!((0.5_f64..0.8).contains(&x1), "X1 fraction {x1}");
    }

    #[test]
    fn wiring_is_a_dag_with_plausible_fanout() {
        let n = openrisc_class(&DesignSpec::small(), 4);
        for net in &n.nets {
            let d = net.driver.expect("all nets driven");
            for &s in &net.sinks {
                assert!(s > d, "net {} sink {s} before driver {d}", net.name);
            }
        }
        let mf = n.mean_fanout();
        assert!((1.0..4.0).contains(&mf), "mean fanout {mf}");
    }

    #[test]
    fn module_tags_cover_all_modules() {
        let spec = DesignSpec::openrisc();
        let n = openrisc_class(&spec, 5);
        let usage = n.module_usage();
        for m in &spec.modules {
            assert!(usage.contains_key(m.name), "module {} missing", m.name);
        }
    }
}
