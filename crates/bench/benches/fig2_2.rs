//! Bench FIG-2.2 — (a) width-histogram extraction from the mapped design,
//! (b) one node of the upsizing-penalty scaling study.

use cnfet_bench::{case_study_widths, library45, paper_model, paper_row};
use cnfet_core::scaling::ScalingStudy;
use cnfet_netlist::mapping::MappedDesign;
use cnfet_netlist::synth::{openrisc_class, DesignSpec};
use cnt_stats::renewal::CountModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_histogram(c: &mut Criterion) {
    let lib = library45();
    let netlist = openrisc_class(&DesignSpec::small(), 42);
    let mapped = MappedDesign::map(&netlist, &lib).expect("mappable");
    c.bench_function("fig2_2a/width_histogram_3k_cells", |b| {
        b.iter(|| {
            mapped
                .width_histogram(black_box(80.0), 480.0)
                .expect("valid bins")
        })
    });
}

fn bench_design_generation(c: &mut Criterion) {
    c.bench_function("fig2_2a/netlist_generation_3k", |b| {
        b.iter(|| openrisc_class(black_box(&DesignSpec::small()), 42))
    });
}

fn bench_scaling_node(c: &mut Criterion) {
    let study = ScalingStudy::new(
        paper_model().with_backend(CountModel::GaussianSum),
        45.0,
        case_study_widths(),
        0.90,
        1e8,
        paper_row(),
    )
    .expect("valid study");
    c.bench_function("fig2_2b/solve_one_node", |b| {
        b.iter(|| study.solve_node(black_box(32.0), 1.0).expect("solvable"))
    });
}

criterion_group!(
    benches,
    bench_histogram,
    bench_design_generation,
    bench_scaling_node
);
criterion_main!(benches);
