//! Bench SERVICE — warm-cache request throughput of the v1 yield service.
//!
//! The service's reason to exist is that a long-lived daemon answers the
//! co-optimizer's thousandth `Evaluate` from warm shared caches instead
//! of rebuilding curves and design statistics per call. These benches pin
//! that win in the perf trajectory:
//!
//! * `warm_cache_evaluate` — steady-state typed evaluation on a shared
//!   service (the daemon's hot path);
//! * `cold_pipeline_per_call` — the anti-pattern the service replaces: a
//!   fresh `Pipeline` (empty caches) per request;
//! * `envelope_evaluate` — the full wire path: request parse → dispatch →
//!   response serialize, measuring envelope overhead on top of the warm
//!   evaluation;
//! * `sweep_stream_12` — a 12-scenario grid streamed through the handle.

use cnfet_pipeline::{
    BackendSpec, CorrelationSpec, Json, Pipeline, RhoSpec, ScenarioSpec, YieldRequest, YieldService,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn service_spec(name: &str, node: f64, correlation: CorrelationSpec) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(name);
    spec.node_nm = node;
    spec.correlation = correlation;
    spec.backend = BackendSpec::GaussianSum;
    spec.rho = RhoSpec::Paper;
    spec.fast_design = true;
    spec
}

fn bench_evaluate_paths(c: &mut Criterion) {
    let spec = service_spec("bench", 32.0, CorrelationSpec::GrowthAlignedLayout);

    let service = YieldService::new();
    service.evaluate(&spec, 1).expect("warms the caches");
    c.bench_function("service/warm_cache_evaluate", |b| {
        b.iter(|| service.evaluate(black_box(&spec), 1).expect("evaluable"))
    });

    c.bench_function("service/cold_pipeline_per_call", |b| {
        b.iter(|| {
            Pipeline::new()
                .evaluate(black_box(&spec), 1)
                .expect("evaluable")
        })
    });
}

fn bench_envelope_overhead(c: &mut Criterion) {
    let spec = service_spec("bench", 32.0, CorrelationSpec::GrowthAlignedLayout);
    let service = YieldService::new();
    service.evaluate(&spec, 1).expect("warms the caches");
    let line = YieldRequest::evaluate("b-1", spec, 1)
        .to_json()
        .to_string_compact();
    c.bench_function("service/envelope_evaluate", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            service.handle_line(black_box(&line), &mut |response| {
                bytes += response.to_json().to_string_compact().len();
            });
            assert!(bytes > 0);
            bytes
        })
    });
    // The parse-only share of the wire path, for reference.
    c.bench_function("service/request_parse", |b| {
        b.iter(|| YieldRequest::from_json(&Json::parse(black_box(&line)).unwrap()).unwrap())
    });
}

fn bench_sweep_stream(c: &mut Criterion) {
    let service = YieldService::new();
    let specs: Vec<ScenarioSpec> = [45.0, 32.0, 22.0, 16.0]
        .into_iter()
        .flat_map(|node| {
            [
                service_spec(&format!("n{node}/plain"), node, CorrelationSpec::None),
                service_spec(&format!("n{node}/growth"), node, CorrelationSpec::Growth),
                service_spec(
                    &format!("n{node}/full"),
                    node,
                    CorrelationSpec::GrowthAlignedLayout,
                ),
            ]
        })
        .collect();
    // Warm once so the bench measures steady-state streaming.
    for item in service.sweep_with_workers(specs.clone(), 7, 4) {
        item.report.expect("evaluable");
    }
    c.bench_function("service/sweep_stream_12", |b| {
        b.iter(|| {
            let delivered = service
                .sweep_with_workers(black_box(specs.clone()), 7, 4)
                .count();
            assert_eq!(delivered, 12);
            delivered
        })
    });
}

criterion_group!(
    benches,
    bench_evaluate_paths,
    bench_envelope_overhead,
    bench_sweep_stream
);
criterion_main!(benches);
