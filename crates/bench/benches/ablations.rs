//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * **Conditional MC vs naive MC** — why Rao-Blackwellisation is load-
//!   bearing: at equal trial counts the conditional estimator resolves
//!   probabilities naive sampling cannot even see.
//! * **Run DP vs inclusion–exclusion** — the DP's linear scaling vs the
//!   exponential subset expansion.
//! * **Count-model back-ends** — exact convolution vs CLT.
//! * **CNT length model** — fixed vs exponential lengths in the growth
//!   simulator (the paper's deferred "length variations" extension).

use cnfet_bench::paper_model;
use cnfet_sim::rundp::row_failure_probability;
use cnt_growth::{DirectionalGrowth, Growth, GrowthParams, LengthModel, Rect};
use cnt_stats::renewal::{CountModel, RenewalCount};
use cnt_stats::TruncatedGaussian;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Inclusion–exclusion reference for the row-failure union (exponential in
/// the number of intervals; the ablation's strawman).
fn union_by_inclusion_exclusion(intervals: &[(usize, usize)], pf: f64) -> f64 {
    let k = intervals.len();
    assert!(k <= 16, "inclusion-exclusion explodes beyond ~16 intervals");
    let mut total = 0.0;
    for mask in 1u32..(1 << k) {
        // The union of the selected intervals' track sets.
        let mut tracks: Vec<(usize, usize)> = Vec::new();
        for (i, iv) in intervals.iter().enumerate() {
            if mask >> i & 1 == 1 {
                tracks.push(*iv);
            }
        }
        tracks.sort_unstable();
        let mut covered = 0usize;
        let mut cur: Option<(usize, usize)> = None;
        for (lo, hi) in tracks {
            match cur {
                Some((clo, chi)) if lo <= chi + 1 => cur = Some((clo, chi.max(hi))),
                Some((clo, chi)) => {
                    covered += chi - clo + 1;
                    cur = Some((lo, hi));
                }
                None => cur = Some((lo, hi)),
            }
        }
        if let Some((clo, chi)) = cur {
            covered += chi - clo + 1;
        }
        let term = pf.powi(covered as i32);
        if (mask.count_ones() % 2) == 1 {
            total += term;
        } else {
            total -= term;
        }
    }
    total
}

fn bench_dp_vs_inclusion_exclusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/union_evaluators");
    for k in [4usize, 8, 12] {
        let intervals: Vec<(usize, usize)> = (0..k).map(|i| (i * 3, i * 3 + 5)).collect();
        let n_tracks = 3 * k + 8;
        group.bench_with_input(BenchmarkId::new("run_dp", k), &k, |b, _| {
            b.iter(|| {
                row_failure_probability(black_box(n_tracks), black_box(&intervals), 0.531)
                    .expect("valid DP input")
            })
        });
        group.bench_with_input(BenchmarkId::new("inclusion_exclusion", k), &k, |b, _| {
            b.iter(|| union_by_inclusion_exclusion(black_box(&intervals), 0.531))
        });
    }
    group.finish();
}

fn bench_conditional_vs_naive_mc(c: &mut Criterion) {
    // Estimate pF(60 nm) ≈ 1e-3-scale with 1000 trials each way.
    let pitch = TruncatedGaussian::positive_with_moments(4.0, 3.2).expect("valid");
    let renewal = RenewalCount::new(pitch, CountModel::GaussianSum);
    let pf: f64 = 0.531;
    let width = 60.0;
    c.bench_function("ablation/conditional_mc_1k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                let mut pos = renewal.sample_first_gap(&mut rng);
                let mut n = 0i32;
                while pos <= width {
                    n += 1;
                    pos += {
                        use cnt_stats::ContinuousDist;
                        pitch.sample(&mut rng)
                    };
                }
                acc += pf.powi(n);
            }
            black_box(acc / 1000.0)
        })
    });
    c.bench_function("ablation/naive_mc_1k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut failures = 0u32;
            for _ in 0..1000 {
                let mut pos = renewal.sample_first_gap(&mut rng);
                let mut all_failed = true;
                while pos <= width {
                    if rng.gen::<f64>() >= pf {
                        all_failed = false;
                    }
                    pos += {
                        use cnt_stats::ContinuousDist;
                        pitch.sample(&mut rng)
                    };
                }
                failures += all_failed as u32;
            }
            black_box(failures as f64 / 1000.0)
        })
    });
}

fn bench_backends(c: &mut Criterion) {
    let exact = paper_model();
    let clt = paper_model().with_backend(CountModel::GaussianSum);
    let mut group = c.benchmark_group("ablation/count_backends");
    group.bench_function("convolution_155nm", |b| {
        b.iter(|| exact.p_failure(black_box(155.0)).expect("computable"))
    });
    group.bench_function("gaussian_sum_155nm", |b| {
        b.iter(|| clt.p_failure(black_box(155.0)).expect("computable"))
    });
    group.finish();
}

fn bench_length_models(c: &mut Criterion) {
    let region = Rect::new(0.0, 0.0, 5000.0, 500.0).expect("valid region");
    let mut group = c.benchmark_group("ablation/length_models");
    for (name, model) in [
        ("fixed", LengthModel::Fixed(1000.0)),
        ("exponential", LengthModel::Exponential { mean: 1000.0 }),
    ] {
        let growth =
            DirectionalGrowth::new(GrowthParams::new(4.0, 0.8, 0.33, model).expect("valid"));
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| growth.grow(black_box(region), &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dp_vs_inclusion_exclusion,
    bench_conditional_vs_naive_mc,
    bench_backends,
    bench_length_models
);
criterion_main!(benches);
