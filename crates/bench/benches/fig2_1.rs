//! Bench FIG-2.1 — the device failure probability `pF(W)` evaluation that
//! generates the paper's Fig 2.1 curves, across numerical back-ends.

use cnfet_bench::paper_model;
use cnt_stats::renewal::CountModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_p_failure(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_1/p_failure");
    for width in [60.0, 103.0, 155.0] {
        let exact = paper_model();
        group.bench_with_input(
            BenchmarkId::new("convolution", width as u64),
            &width,
            |b, &w| b.iter(|| exact.p_failure(black_box(w)).expect("computable")),
        );
        let clt = paper_model().with_backend(CountModel::GaussianSum);
        group.bench_with_input(
            BenchmarkId::new("gaussian_sum", width as u64),
            &width,
            |b, &w| b.iter(|| clt.p_failure(black_box(w)).expect("computable")),
        );
    }
    group.finish();
}

fn bench_full_curve(c: &mut Criterion) {
    // One full Fig 2.1 curve: 33 widths at the fast back-end.
    let widths: Vec<f64> = (0..33).map(|i| 20.0 + 5.0 * i as f64).collect();
    let model = paper_model().with_backend(CountModel::GaussianSum);
    c.bench_function("fig2_1/full_curve_33pts", |b| {
        b.iter(|| model.sweep(black_box(&widths)).expect("computable"))
    });
}

criterion_group!(benches, bench_p_failure, bench_full_curve);
criterion_main!(benches);
