//! Bench FIG-3.1 — CNT population growth and pair-correlation measurement.

use cnt_growth::correlation::pair_correlation;
use cnt_growth::{
    DirectionalGrowth, Growth, GrowthParams, LengthModel, Rect, UncorrelatedGrowth, Vmr,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_growth(c: &mut Criterion) {
    let region = Rect::new(0.0, 0.0, 2000.0, 1000.0).expect("valid region");
    let directional = DirectionalGrowth::new(
        GrowthParams::new(4.0, 0.8, 0.33, LengthModel::Fixed(2000.0)).expect("valid"),
    );
    c.bench_function("fig3_1/directional_grow_2x1um", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| directional.grow(black_box(region), &mut rng))
    });

    let uncorr = UncorrelatedGrowth::density_matched(
        GrowthParams::new(8.0, 0.8, 0.33, LengthModel::Fixed(800.0)).expect("valid"),
    )
    .expect("valid");
    c.bench_function("fig3_1/uncorrelated_grow_2x1um", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| uncorr.grow(black_box(region), &mut rng))
    });
}

fn bench_pair_correlation(c: &mut Criterion) {
    let directional = DirectionalGrowth::new(
        GrowthParams::new(8.0, 0.8, 0.33, LengthModel::Fixed(100_000.0)).expect("valid"),
    );
    let vmr = Vmr::paper_aggressive();
    let a = Rect::new(0.0, 0.0, 32.0, 64.0).expect("valid");
    let bb = Rect::new(1000.0, 0.0, 32.0, 64.0).expect("valid");
    c.bench_function("fig3_1/pair_correlation_100trials", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| pair_correlation(&directional, &vmr, a, bb, 100, &mut rng).expect("measurable"))
    });
}

criterion_group!(benches, bench_growth, bench_pair_correlation);
criterion_main!(benches);
