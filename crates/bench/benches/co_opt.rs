//! Bench CO_OPT — the process–design co-optimization engine.
//!
//! The co-optimizer is the workload the bounded shared caches were built
//! to feed: every candidate batch re-asks `pF(W)` questions on the same
//! handful of `(corner, backend)` curves. These benches pin the search
//! cost in the perf trajectory:
//!
//! * `grid_16_warm` — the 16-candidate correlation-vs-width grid scan on
//!   a warm service (the `repro coopt` example, steady state);
//! * `grid_16_cold_service` — the same study paying first-touch curve and
//!   design-stat builds, bounding the cache win;
//! * `descent_vs_grid_evals` — coordinate descent on the same space,
//!   measuring the evaluation savings the strategy buys.

use cnfet_opt::run_co_opt;
use cnfet_pipeline::{CoOptSpec, YieldService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn study(searcher: &str) -> CoOptSpec {
    CoOptSpec::parse(&format!(
        r#"{{
            "name": "bench",
            "base": {{
                "backend": "gaussian-sum",
                "rho": "paper",
                "fast_design": true,
                "correlation": "growth+aligned-layout"
            }},
            "search": {{
                "l_cnt_um": {{ "min": 50, "max": 400, "steps": 8 }},
                "grid": ["dual", "single"]
            }},
            "searcher": {searcher}
        }}"#
    ))
    .expect("valid bench spec")
}

fn bench_grid_scan(c: &mut Criterion) {
    let spec = study(r#""grid""#);
    let service = YieldService::new();
    run_co_opt(&service, &spec, 1, 4).expect("warms the caches");
    c.bench_function("co_opt/grid_16_warm", |b| {
        b.iter(|| run_co_opt(&service, black_box(&spec), 1, 4).expect("searchable"))
    });
    c.bench_function("co_opt/grid_16_cold_service", |b| {
        b.iter(|| run_co_opt(&YieldService::new(), black_box(&spec), 1, 4).expect("searchable"))
    });
}

fn bench_descent(c: &mut Criterion) {
    let spec = study(r#"{ "kind": "coordinate-descent", "restarts": 2, "max_sweeps": 4 }"#);
    let service = YieldService::new();
    let report = run_co_opt(&service, &spec, 1, 4).expect("warms the caches");
    assert!(
        report.evaluations <= report.candidates,
        "descent must not exceed the grid"
    );
    c.bench_function("co_opt/descent_vs_grid_evals", |b| {
        b.iter(|| run_co_opt(&service, black_box(&spec), 1, 4).expect("searchable"))
    });
}

criterion_group!(benches, bench_grid_scan, bench_descent);
criterion_main!(benches);
