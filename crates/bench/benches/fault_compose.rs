//! Bench FAULT_COMPOSE — the redundancy-yield algebra of `cnfet-fault`.
//!
//! Every fault-aware solve ends in `RedundancyScheme::compose`: the
//! evaluate path runs it once per scenario, the wafer engine once per
//! die, and `required_p_cell` (the budget inversion feeding the width
//! solve) bisects over the same exact tail. These benches pin both
//! composition paths and the inversion in the perf trajectory:
//!
//! * `tmr_exact` / `spare_units_exact` — the closed-form tail on the
//!   paper-scale module (1- and 9-term schemes, the wafer hot path);
//! * `repairable_tile_mc` — a scheme past `EXACT_TERM_LIMIT`, paying the
//!   adaptive Monte-Carlo fallback at its default ±5 % precision;
//! * `required_p_cell_spares` — the deterministic bisection the fault
//!   solver runs before touching the failure curve.

use cnfet_fault::{ComposeMethod, McFallback, RedundancyScheme};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The paper's 45-nm case study: 0.33 · 1e8 minimum-sized cells.
const M_CELLS: f64 = 0.33e8;

fn bench_exact(c: &mut Criterion) {
    let mc = McFallback::default();
    let tmr = RedundancyScheme::Tmr;
    // Per-cell budgets near each scheme's operating point (TMR widens the
    // bare ~3.3e-9 budget to ~3.3e-5; 8 spare rows land at ~1.5e-7).
    c.bench_function("fault_compose/tmr_exact", |b| {
        b.iter(|| {
            let out = tmr
                .compose(black_box(3.3e-5), black_box(M_CELLS), &mc)
                .expect("in-domain");
            assert_eq!(out.method, ComposeMethod::Exact);
            out.circuit_yield
        })
    });
    let spares = RedundancyScheme::SpareUnits {
        spares: 8,
        unit_size: 65_536,
    };
    c.bench_function("fault_compose/spare_units_exact", |b| {
        b.iter(|| {
            let out = spares
                .compose(black_box(1.5e-7), black_box(M_CELLS), &mc)
                .expect("in-domain");
            assert_eq!(out.method, ComposeMethod::Exact);
            out.circuit_yield
        })
    });
}

fn bench_mc_fallback(c: &mut Criterion) {
    // 8193 tail terms — past EXACT_TERM_LIMIT, so compose takes the
    // geometric-skip Monte-Carlo path. Parameters put the yield mid-range
    // (imperfect test coverage escapes kill ~half the chips) so the
    // adaptive driver does representative work instead of converging on
    // a degenerate 0/1 estimate.
    let tile = RedundancyScheme::RepairableTile {
        tiles: 16_384,
        spare_tiles: 8_192,
        test_coverage: 0.999,
    };
    let mc = McFallback::default();
    c.bench_function("fault_compose/repairable_tile_mc", |b| {
        b.iter(|| {
            let out = tile
                .compose(black_box(2.0e-5), black_box(M_CELLS), &mc)
                .expect("in-domain");
            assert_eq!(out.method, ComposeMethod::MonteCarlo);
            out.circuit_yield
        })
    });
}

fn bench_inversion(c: &mut Criterion) {
    let spares = RedundancyScheme::SpareUnits {
        spares: 8,
        unit_size: 65_536,
    };
    c.bench_function("fault_compose/required_p_cell_spares", |b| {
        b.iter(|| {
            spares
                .required_p_cell(black_box(0.9), black_box(M_CELLS))
                .expect("invertible")
        })
    });
}

criterion_group!(benches, bench_exact, bench_mc_fallback, bench_inversion);
criterion_main!(benches);
