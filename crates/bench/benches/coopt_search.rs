//! Bench COOPT_SEARCH — the adaptive searchers on the shipped 7-axis
//! example (`examples/coopt/genetic_7axis.json`).
//!
//! The point of the successive-halving precision ladder is *evaluation
//! economy*: match coordinate descent's optimum while spending at most
//! half of its full-precision Monte-Carlo evaluations. That contract is
//! asserted here (so a perf run cannot silently regress it) and the
//! wall-clock of each strategy on a warm service is pinned in the perf
//! trajectory:
//!
//! * `halving_genetic_7axis_warm` — the example's own searcher: a
//!   genetic population explored at 9x-relaxed `rel_ci`, survivors
//!   confirmed at the spec's precision;
//! * `genetic_7axis_warm` — the same population without the ladder
//!   (every evaluation at full precision);
//! * `descent_7axis_warm` — the coordinate-descent yardstick.

use cnfet_opt::run_co_opt;
use cnfet_pipeline::{CoOptSpec, SearcherSpec, YieldService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SEED: u64 = 20100613; // the repro default

fn example() -> CoOptSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/coopt/genetic_7axis.json"
    );
    CoOptSpec::parse(&std::fs::read_to_string(path).expect("example spec readable"))
        .expect("valid example spec")
}

fn with_searcher(spec: &CoOptSpec, searcher: SearcherSpec) -> CoOptSpec {
    let mut spec = spec.clone();
    spec.searcher = searcher;
    spec
}

fn bench_search(c: &mut Criterion) {
    let halving_spec = example();
    let SearcherSpec::Halving { inner, .. } = &halving_spec.searcher else {
        panic!("the example ships a halving ladder");
    };
    let genetic_spec = with_searcher(&halving_spec, (**inner).clone());
    let descent_spec = with_searcher(
        &halving_spec,
        SearcherSpec::CoordinateDescent {
            restarts: 3,
            max_sweeps: 8,
        },
    );

    let service = YieldService::new();
    let halving = run_co_opt(&service, &halving_spec, SEED, 4).expect("halving run");
    let descent = run_co_opt(&service, &descent_spec, SEED, 4).expect("descent run");
    // Evaluations-to-front: the acceptance contract the wall-time numbers
    // below only make sense under.
    assert!(
        halving.best.cost <= descent.best.cost,
        "halving best {:.4} trails descent {:.4}",
        halving.best.cost,
        descent.best.cost
    );
    assert!(
        halving.evaluations * 2 <= descent.evaluations,
        "halving spent {} full-precision evaluations vs descent's {}",
        halving.evaluations,
        descent.evaluations
    );
    println!(
        "coopt_search: best {:.4} (halving) vs {:.4} (descent); \
         full-precision evals {} vs {}",
        halving.best.cost, descent.best.cost, halving.evaluations, descent.evaluations
    );

    c.bench_function("coopt_search/halving_genetic_7axis_warm", |b| {
        b.iter(|| run_co_opt(&service, black_box(&halving_spec), SEED, 4).expect("searchable"))
    });
    c.bench_function("coopt_search/genetic_7axis_warm", |b| {
        b.iter(|| run_co_opt(&service, black_box(&genetic_spec), SEED, 4).expect("searchable"))
    });
    c.bench_function("coopt_search/descent_7axis_warm", |b| {
        b.iter(|| run_co_opt(&service, black_box(&descent_spec), SEED, 4).expect("searchable"))
    });
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
