//! Bench MC-BACKEND — the adaptive Monte-Carlo back-end against the exact
//! convolution back-end on the Fig 2.1 sweep widths.
//!
//! The interesting number is the cost of one converged `pF(W)` estimate at
//! a 1 % confidence-interval half-width: the stratified, exponentially
//! tilted sampler keeps that roughly width-independent, where naive MC
//! would scale like `1/pF(W)` (≈ 1e9 trials at the 155 nm anchor).

use cnfet_bench::paper_model;
use cnfet_core::stochastic::McFailure;
use cnfet_sim::adaptive::McPrecision;
use cnfet_sim::estimate_fet_failure_adaptive;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// 1 % relative half-width at 95 % confidence.
fn precision_1pct() -> McPrecision {
    McPrecision {
        rel_ci: 0.01,
        max_trials: 5_000_000,
        batch: 5_000,
        level: 0.95,
    }
}

fn bench_mc_vs_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_backend/p_failure");
    let model = paper_model();
    let pf = model.corner().pf();
    for width in [60.0, 103.0, 155.0] {
        group.bench_with_input(
            BenchmarkId::new("convolution", width as u64),
            &width,
            |b, &w| b.iter(|| model.p_failure(black_box(w)).expect("computable")),
        );
        let precision = precision_1pct();
        group.bench_with_input(
            BenchmarkId::new("monte_carlo_1pct_ci", width as u64),
            &width,
            |b, &w| {
                b.iter(|| {
                    estimate_fet_failure_adaptive(
                        black_box(w),
                        *model.pitch(),
                        pf,
                        &precision,
                        1,
                        7,
                    )
                    .expect("converges")
                })
            },
        );
    }
    group.finish();
}

fn bench_mc_wmin_solve(c: &mut Criterion) {
    // One full W_min bisection on the stochastic evaluator (memoized, so
    // each iteration pays only the cache-hit path after the first).
    c.bench_function("mc_backend/wmin_warm_cache", |b| {
        let mc = McFailure::new(
            paper_model(),
            McPrecision {
                rel_ci: 0.05,
                max_trials: 1_000_000,
                batch: 2_000,
                level: 0.95,
            },
            11,
        )
        .expect("valid precision");
        let curve = cnfet_core::curve::FailureCurve::new(mc)
            .with_rel_tol(0.2)
            .expect("valid tol");
        // Warm: the first solve pays the sampling, later ones the lookups.
        let _ = cnfet_core::WminSolver::new(&curve)
            .solve(0.9, 33e6)
            .unwrap();
        b.iter(|| {
            cnfet_core::WminSolver::new(&curve)
                .solve(black_box(0.9), black_box(33e6))
                .expect("solvable")
        })
    });
}

criterion_group!(benches, bench_mc_vs_convolution, bench_mc_wmin_solve);
criterion_main!(benches);
