//! Bench FIG-3.2 / TAB-2 — the aligned-active transform, per cell and
//! library-wide.

use cnfet_bench::{library45, paper_curve, paper_model, table2_relaxations};
use cnfet_celllib::cell::TechParams;
use cnfet_celllib::commercial65::commercial65_like;
use cnfet_core::wmin::WminSolver;
use cnfet_layout::{align_cell, align_library, AlignmentOptions, GridPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_align_cell(c: &mut Criterion) {
    let lib = library45();
    let tech = TechParams::nangate45();
    let aoi = lib.require("AOI222_X1").expect("present").clone();
    let opts = AlignmentOptions::default();
    c.bench_function("fig3_2/align_aoi222_x1", |b| {
        b.iter(|| align_cell(black_box(&aoi), &tech, &opts).expect("alignable"))
    });
}

fn bench_align_libraries(c: &mut Criterion) {
    let single = AlignmentOptions::default();
    let dual = AlignmentOptions {
        policy: GridPolicy::Dual,
        ..AlignmentOptions::default()
    };
    let n45 = library45();
    c.bench_function("table2/align_nangate45_134cells", |b| {
        b.iter(|| align_library(black_box(&n45), &single).expect("alignable"))
    });
    let c65 = commercial65_like();
    c.bench_function("table2/align_commercial65_775cells", |b| {
        b.iter(|| align_library(black_box(&c65), &single).expect("alignable"))
    });
    c.bench_function("table2/align_commercial65_dual_grid", |b| {
        b.iter(|| align_library(black_box(&c65), &dual).expect("alignable"))
    });
}

fn bench_library_generation(c: &mut Criterion) {
    c.bench_function("table2/generate_nangate45", |b| {
        b.iter(cnfet_celllib::nangate45::nangate45_like)
    });
    c.bench_function("table2/generate_commercial65", |b| {
        b.iter(commercial65_like)
    });
}

/// Table 2's yield workload: the three library columns' `W_min` solves on
/// the exact convolution back-end. The `per_call_model` arm re-evaluates
/// `pF(W)` on every bisection step (the pre-pipeline wiring); the
/// `shared_curve` arm builds one memoized `FailureCurve` per iteration and
/// shares it across all three solves — the pipeline's hot path.
fn bench_table2_wmin(c: &mut Criterion) {
    let m_min = 0.33 * 1e8;
    let mut group = c.benchmark_group("table2/wmin_three_columns");
    group.bench_function("per_call_model", |b| {
        b.iter(|| {
            let solver = WminSolver::new(paper_model());
            for &relaxation in &table2_relaxations() {
                black_box(
                    solver
                        .solve_relaxed(black_box(0.90), m_min, relaxation)
                        .expect("solvable"),
                );
            }
        })
    });
    group.bench_function("shared_curve", |b| {
        b.iter(|| {
            let curve = paper_curve();
            let solver = WminSolver::new(&curve);
            for &relaxation in &table2_relaxations() {
                black_box(
                    solver
                        .solve_relaxed(black_box(0.90), m_min, relaxation)
                        .expect("solvable"),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_align_cell,
    bench_align_libraries,
    bench_library_generation,
    bench_table2_wmin
);
criterion_main!(benches);
