//! Bench FIG-3.3 — the end-to-end correlation-aware optimizer.

use cnfet_bench::{case_study_widths, paper_model, paper_row};
use cnfet_core::optimizer::YieldOptimizer;
use cnfet_core::wmin::WminSolver;
use cnt_stats::renewal::CountModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_wmin_solve(c: &mut Criterion) {
    let solver = WminSolver::new(paper_model().with_backend(CountModel::GaussianSum));
    c.bench_function("fig3_3/wmin_solve", |b| {
        b.iter(|| solver.solve(black_box(0.90), 33e6).expect("solvable"))
    });
    c.bench_function("fig3_3/wmin_solve_relaxed_360x", |b| {
        b.iter(|| {
            solver
                .solve_relaxed(black_box(0.90), 33e6, 360.0)
                .expect("solvable")
        })
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let optimizer = YieldOptimizer::new(
        paper_model().with_backend(CountModel::GaussianSum),
        case_study_widths(),
        1e8,
        paper_row(),
    )
    .expect("valid optimizer");
    c.bench_function("fig3_3/optimize_end_to_end", |b| {
        b.iter(|| optimizer.optimize(black_box(0.90)).expect("solvable"))
    });
}

criterion_group!(benches, bench_wmin_solve, bench_optimizer);
criterion_main!(benches);
