//! Bench FIG-3.3 — the end-to-end correlation-aware optimizer.

use cnfet_bench::{case_study_widths, paper_model, paper_row};
use cnfet_core::optimizer::YieldOptimizer;
use cnfet_core::wmin::WminSolver;
use cnfet_pipeline::{BackendSpec, CorrelationSpec, MminSpec, RhoSpec, ScenarioSpec, YieldService};
use cnt_stats::renewal::CountModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_wmin_solve(c: &mut Criterion) {
    let solver = WminSolver::new(paper_model().with_backend(CountModel::GaussianSum));
    c.bench_function("fig3_3/wmin_solve", |b| {
        b.iter(|| solver.solve(black_box(0.90), 33e6).expect("solvable"))
    });
    c.bench_function("fig3_3/wmin_solve_relaxed_360x", |b| {
        b.iter(|| {
            solver
                .solve_relaxed(black_box(0.90), 33e6, 360.0)
                .expect("solvable")
        })
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let optimizer = YieldOptimizer::new(
        paper_model().with_backend(CountModel::GaussianSum),
        case_study_widths(),
        1e8,
        paper_row(),
    )
    .expect("valid optimizer");
    c.bench_function("fig3_3/optimize_end_to_end", |b| {
        b.iter(|| optimizer.optimize(black_box(0.90)).expect("solvable"))
    });
}

/// One Fig 3.3 scenario spec at `node`, CLT back-end, reduced design.
fn fig3_3_spec(node: f64, correlation: CorrelationSpec) -> ScenarioSpec {
    let mut spec = ScenarioSpec::baseline(format!("bench/node={node}/{}", correlation.name()));
    spec.node_nm = node;
    spec.correlation = correlation;
    spec.backend = BackendSpec::GaussianSum;
    spec.m_min = MminSpec::SelfConsistent;
    spec.rho = RhoSpec::Paper;
    spec.fast_design = true;
    spec
}

fn bench_pipeline(c: &mut Criterion) {
    // Warm the service's design/curve caches once; the benches then
    // measure the steady-state scenario evaluation the daemon sees.
    let service = YieldService::new();
    let warm = fig3_3_spec(32.0, CorrelationSpec::GrowthAlignedLayout);
    service.evaluate(&warm, 1).expect("evaluable");
    c.bench_function("fig3_3/pipeline_evaluate_node32", |b| {
        b.iter(|| service.evaluate(black_box(&warm), 1).expect("evaluable"))
    });

    let specs: Vec<ScenarioSpec> = [45.0, 32.0, 22.0, 16.0]
        .into_iter()
        .flat_map(|node| {
            [
                fig3_3_spec(node, CorrelationSpec::None),
                fig3_3_spec(node, CorrelationSpec::GrowthAlignedLayout),
            ]
        })
        .collect();
    c.bench_function("fig3_3/sweep_8_scenarios", |b| {
        b.iter(|| {
            service
                .sweep_with_workers(black_box(specs.clone()), 7, 4)
                .count()
        })
    });
}

criterion_group!(benches, bench_wmin_solve, bench_optimizer, bench_pipeline);
criterion_main!(benches);
