//! Bench TAB-1 — the run DP and the conditional-MC row estimator at the
//! paper's row scale (360 devices, ~350 tracks).

use cnfet_bench::paper_model;
use cnfet_core::rowmodel::UnalignedRowStudy;
use cnfet_sim::rundp::row_failure_probability;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn paper_scale_intervals(devices: usize) -> (usize, Vec<(usize, usize)>) {
    // 560-nm band at 4-nm pitch ≈ 140 tracks; ~34-track-wide devices at
    // staggered offsets, like the Table-1 row.
    let n_tracks = 140;
    let intervals: Vec<(usize, usize)> = (0..devices)
        .map(|i| {
            let lo = (i * 11) % (n_tracks - 35);
            (lo, lo + 34)
        })
        .collect();
    (n_tracks, intervals)
}

fn bench_run_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/run_dp");
    for devices in [36usize, 360, 3600] {
        let (n_tracks, intervals) = paper_scale_intervals(devices);
        group.bench_with_input(BenchmarkId::from_parameter(devices), &devices, |b, _| {
            b.iter(|| {
                row_failure_probability(black_box(n_tracks), black_box(&intervals), 0.531)
                    .expect("valid DP input")
            })
        });
    }
    group.finish();
}

fn bench_conditional_mc(c: &mut Criterion) {
    let model = paper_model();
    let study = UnalignedRowStudy {
        band_height: 560.0,
        width: 137.0,
        offset_step: 45.0,
        devices: 360,
    };
    c.bench_function("table1/conditional_mc_100trials_360fets", |b| {
        b.iter(|| {
            study
                .estimate(&model, 100, black_box(7))
                .expect("estimable")
        })
    });
}

criterion_group!(benches, bench_run_dp, bench_conditional_mc);
criterion_main!(benches);
