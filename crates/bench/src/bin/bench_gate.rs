//! `bench-gate` — CI guard against benchmark regressions.
//!
//! Diffs a freshly measured criterion-lite JSON report against a committed
//! baseline (`BENCH_*.json`) and exits non-zero when any benchmark slowed
//! down by more than the allowed fraction.
//!
//! Raw ns/iter numbers are not comparable across machines, so by default
//! the gate **normalizes** both reports by the median fresh/baseline ratio
//! across all shared entries: the median absorbs the global machine-speed
//! factor, and only entries that regressed *relative to the rest of the
//! suite* trip the gate. Pass `--no-normalize` to compare raw ratios (only
//! meaningful when baseline and fresh ran on the same machine).
//!
//! ```text
//! bench-gate --baseline BENCH_mc_backend.json --fresh fresh.json \
//!     [--max-regression 0.25] [--no-normalize]
//! ```
//!
//! Rules:
//! - a benchmark present in the baseline but missing from the fresh report
//!   is an error (a silently deleted benchmark cannot be gated);
//! - a benchmark new in the fresh report is fine (it gets a baseline the
//!   next time baselines are regenerated);
//! - both `criterion-lite/1` and `criterion-lite/2` schemas are accepted
//!   (`/2` adds a provenance `meta` block, which the gate ignores).

use cnfet_pipeline::json::Json;
use std::process::ExitCode;

/// Default allowed slowdown fraction (25 %).
const DEFAULT_MAX_REGRESSION: f64 = 0.25;

/// One parsed report: `(name, ns_per_iter)` in file order.
type Report = Vec<(String, f64)>;

/// Parse a criterion-lite report (`/1` or `/2`) into name → ns/iter pairs.
fn parse_report(src: &str, label: &str) -> Result<Report, String> {
    let doc = Json::parse(src).map_err(|e| format!("{label}: not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{label}: missing \"schema\" field"))?;
    if !matches!(schema, "criterion-lite/1" | "criterion-lite/2") {
        return Err(format!("{label}: unsupported schema {schema:?}"));
    }
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{label}: missing \"benchmarks\" array"))?;
    let mut out = Vec::with_capacity(benches.len());
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label}: benchmark entry without a name"))?;
        let ns = b
            .get("ns_per_iter")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{label}: {name}: missing ns_per_iter"))?;
        if !(ns.is_finite() && ns > 0.0) {
            return Err(format!("{label}: {name}: ns_per_iter {ns} not positive"));
        }
        out.push((name.to_string(), ns));
    }
    Ok(out)
}

/// Median of a non-empty slice (averages the middle pair for even lengths).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Outcome of gating one benchmark.
#[derive(Debug, PartialEq)]
struct Verdict {
    name: String,
    base_ns: f64,
    fresh_ns: f64,
    /// Normalized fresh/base ratio (1.0 = unchanged).
    ratio: f64,
    failed: bool,
}

/// Compare fresh against baseline; `Err` only for structural problems
/// (missing entries). The boolean says whether any entry tripped the gate.
fn gate(
    baseline: &Report,
    fresh: &Report,
    max_regression: f64,
    normalize: bool,
) -> Result<(Vec<Verdict>, bool), String> {
    let fresh_ns = |name: &str| fresh.iter().find(|(n, _)| n == name).map(|&(_, ns)| ns);
    let missing: Vec<&str> = baseline
        .iter()
        .filter(|(name, _)| fresh_ns(name).is_none())
        .map(|(name, _)| name.as_str())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "baseline benchmarks missing from the fresh report: {}",
            missing.join(", ")
        ));
    }
    if baseline.is_empty() {
        return Err("baseline has no benchmarks".to_string());
    }
    let mut raw: Vec<f64> = baseline
        .iter()
        .map(|(name, base)| fresh_ns(name).expect("checked above") / base)
        .collect();
    let scale = if normalize { median(&mut raw) } else { 1.0 };
    if !(scale.is_finite() && scale > 0.0) {
        return Err(format!("degenerate machine-speed factor {scale}"));
    }
    let mut any_failed = false;
    let verdicts = baseline
        .iter()
        .map(|(name, base)| {
            let fresh = fresh_ns(name).expect("checked above");
            let ratio = fresh / base / scale;
            let failed = ratio > 1.0 + max_regression;
            any_failed |= failed;
            Verdict {
                name: name.clone(),
                base_ns: *base,
                fresh_ns: fresh,
                ratio,
                failed,
            }
        })
        .collect();
    Ok((verdicts, any_failed))
}

struct Args {
    baseline: String,
    fresh: String,
    max_regression: f64,
    normalize: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut max_regression = DEFAULT_MAX_REGRESSION;
    let mut normalize = true;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(it.next().ok_or("--baseline needs a path")?.clone()),
            "--fresh" => fresh = Some(it.next().ok_or("--fresh needs a path")?.clone()),
            "--max-regression" => {
                let v = it.next().ok_or("--max-regression needs a value")?;
                max_regression = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --max-regression {v:?}"))?;
                if !(max_regression.is_finite() && max_regression > 0.0) {
                    return Err(format!(
                        "--max-regression must be > 0, got {max_regression}"
                    ));
                }
            }
            "--no-normalize" => normalize = false,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline <file> is required")?,
        fresh: fresh.ok_or("--fresh <file> is required")?,
        max_regression,
        normalize,
    })
}

fn run(args: &Args) -> Result<bool, String> {
    let base_src = std::fs::read_to_string(&args.baseline)
        .map_err(|e| format!("read {}: {e}", args.baseline))?;
    let fresh_src =
        std::fs::read_to_string(&args.fresh).map_err(|e| format!("read {}: {e}", args.fresh))?;
    let baseline = parse_report(&base_src, &args.baseline)?;
    let fresh = parse_report(&fresh_src, &args.fresh)?;
    let (verdicts, any_failed) = gate(&baseline, &fresh, args.max_regression, args.normalize)?;

    println!(
        "bench-gate: {} vs {} (max regression {:.0} %{})",
        args.fresh,
        args.baseline,
        args.max_regression * 100.0,
        if args.normalize {
            ", median-normalized"
        } else {
            ", raw"
        }
    );
    for v in &verdicts {
        println!(
            "  {} {:<52} {:>12.1} -> {:>12.1} ns/iter   x{:.3}",
            if v.failed { "FAIL" } else { "ok  " },
            v.name,
            v.base_ns,
            v.fresh_ns,
            v.ratio
        );
    }
    for (name, _) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("  new  {name} (no baseline yet — not gated)");
        }
    }
    Ok(any_failed)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            eprintln!(
                "usage: bench-gate --baseline <file> --fresh <file> \
                 [--max-regression 0.25] [--no-normalize]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("bench-gate: regression beyond the allowed budget");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, f64)]) -> Report {
        entries.iter().map(|&(n, ns)| (n.to_string(), ns)).collect()
    }

    fn doc(schema: &str, entries: &[(&str, f64)]) -> String {
        let body: Vec<String> = entries
            .iter()
            .map(|(n, ns)| format!("{{ \"name\": \"{n}\", \"ns_per_iter\": {ns}, \"iters\": 5 }}"))
            .collect();
        format!(
            "{{ \"schema\": \"{schema}\", \"benchmarks\": [ {} ] }}",
            body.join(", ")
        )
    }

    #[test]
    fn parses_both_schemas_and_rejects_others() {
        let v1 = doc("criterion-lite/1", &[("a/1", 10.0)]);
        let v2 = "{ \"schema\": \"criterion-lite/2\", \
                   \"meta\": { \"git_commit\": \"abc\", \"date\": \"d\", \"toolchain\": \"t\" }, \
                   \"benchmarks\": [ { \"name\": \"a/1\", \"ns_per_iter\": 10.0, \"iters\": 5 } ] }";
        assert_eq!(parse_report(&v1, "v1").unwrap(), report(&[("a/1", 10.0)]));
        assert_eq!(parse_report(v2, "v2").unwrap(), report(&[("a/1", 10.0)]));
        assert!(parse_report(&doc("criterion-lite/3", &[]), "v3").is_err());
        assert!(parse_report("{}", "empty").is_err());
    }

    #[test]
    fn normalization_absorbs_machine_speed() {
        // Fresh machine is uniformly 3x slower: no regression.
        let base = report(&[("a", 100.0), ("b", 200.0), ("c", 400.0)]);
        let fresh = report(&[("a", 300.0), ("b", 600.0), ("c", 1200.0)]);
        let (verdicts, failed) = gate(&base, &fresh, 0.25, true).unwrap();
        assert!(!failed);
        for v in verdicts {
            assert!((v.ratio - 1.0).abs() < 1e-12, "{v:?}");
        }
        // Without normalization the same reports fail everywhere.
        let (_, failed_raw) = gate(&base, &fresh, 0.25, false).unwrap();
        assert!(failed_raw);
    }

    #[test]
    fn relative_regression_trips_the_gate() {
        // One entry 2x slower than the rest of the suite moved.
        let base = report(&[("a", 100.0), ("b", 200.0), ("c", 400.0)]);
        let fresh = report(&[("a", 100.0), ("b", 200.0), ("c", 800.0)]);
        let (verdicts, failed) = gate(&base, &fresh, 0.25, true).unwrap();
        assert!(failed);
        assert!(verdicts.iter().any(|v| v.name == "c" && v.failed));
        assert!(verdicts.iter().all(|v| v.name == "c" || !v.failed));
    }

    #[test]
    fn missing_entry_is_an_error_and_new_entry_is_not() {
        let base = report(&[("a", 100.0), ("b", 200.0)]);
        let fresh_missing = report(&[("a", 100.0)]);
        assert!(gate(&base, &fresh_missing, 0.25, true).is_err());
        let fresh_extra = report(&[("a", 100.0), ("b", 200.0), ("new", 5.0)]);
        let (_, failed) = gate(&base, &fresh_extra, 0.25, true).unwrap();
        assert!(!failed);
    }

    #[test]
    fn speedups_never_fail() {
        let base = report(&[("a", 100.0), ("b", 200.0), ("c", 400.0)]);
        let fresh = report(&[("a", 10.0), ("b", 200.0), ("c", 400.0)]);
        let (_, failed) = gate(&base, &fresh, 0.25, true).unwrap();
        assert!(!failed);
    }

    #[test]
    fn args_parse_and_validate() {
        let ok = parse_args(&[
            "--baseline".into(),
            "b.json".into(),
            "--fresh".into(),
            "f.json".into(),
            "--max-regression".into(),
            "0.5".into(),
            "--no-normalize".into(),
        ])
        .unwrap();
        assert_eq!(ok.baseline, "b.json");
        assert_eq!(ok.fresh, "f.json");
        assert!((ok.max_regression - 0.5).abs() < 1e-12);
        assert!(!ok.normalize);
        assert!(parse_args(&["--baseline".into(), "b".into()]).is_err());
        assert!(parse_args(&["--bogus".into()]).is_err());
        assert!(parse_args(&[
            "--baseline".into(),
            "b".into(),
            "--fresh".into(),
            "f".into(),
            "--max-regression".into(),
            "-1".into(),
        ])
        .is_err());
    }
}
