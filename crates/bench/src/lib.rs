//! Shared fixtures for the benchmark suite.
//!
//! Each bench target regenerates (a slice of) one paper table or figure;
//! these helpers keep the setup identical across targets.

use cnfet_celllib::nangate45::nangate45_like;
use cnfet_celllib::CellLibrary;
use cnfet_core::corner::ProcessCorner;
use cnfet_core::curve::FailureCurve;
use cnfet_core::failure::FailureModel;
use cnfet_core::rowmodel::RowModel;

/// The paper's main-corner failure model (exact convolution back-end).
pub fn paper_model() -> FailureModel {
    FailureModel::paper_default(ProcessCorner::aggressive().expect("valid corner"))
        .expect("valid model")
}

/// A cold memoized curve over [`paper_model`].
pub fn paper_curve() -> FailureCurve {
    FailureCurve::new(paper_model())
}

/// The three Table 2 requirement relaxations (65 nm one grid, 65 nm two
/// grids, Nangate-45 one grid) at the paper's scale — the library-wide
/// `W_min` workload.
pub fn table2_relaxations() -> [f64; 3] {
    [254.0, 127.0, 360.0]
}

/// The Nangate-45-class library.
pub fn library45() -> CellLibrary {
    nangate45_like()
}

/// The paper's Eq. (3.2) row model (M_Rmin = 360).
pub fn paper_row() -> RowModel {
    RowModel::from_design(
        cnfet_core::paper::L_CNT_UM,
        cnfet_core::paper::RHO_MIN_FET_PER_UM,
    )
    .expect("valid row model")
}

/// A compact stand-in for the Fig 2.2a width distribution.
pub fn case_study_widths() -> Vec<(f64, u64)> {
    vec![
        (110.0, 33_000_000),
        (185.0, 47_000_000),
        (370.0, 20_000_000),
    ]
}
