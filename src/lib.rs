//! # cnfet — CNT correlation for CNFET circuit yield enhancement
//!
//! A full reproduction of *"Carbon Nanotube Correlation: Promising
//! Opportunity for CNFET Circuit Yield Enhancement"* (Zhang, Bobba, Patil,
//! Lin, Wong, De Micheli, Mitra — DAC 2010), built as a set of composable
//! crates and re-exported here as one facade.
//!
//! ## The problem
//!
//! CNFETs are built from a handful of parallel carbon nanotubes. Roughly a
//! third of grown CNTs are metallic and must be etched away, taking ~30 %
//! of the good ones with them. A narrow transistor can end up with *zero*
//! working channels — "CNT count failure" — and at a billion transistors
//! per chip this destroys yield unless narrow devices are upsized at a
//! large power cost.
//!
//! ## The paper's idea
//!
//! Directionally grown CNTs are hundreds of micrometres long, so CNFETs
//! whose active regions are **aligned along the growth direction share the
//! same CNTs** — they live and die together. Restricting every cell layout
//! so that critical active regions sit on one global grid converts a row of
//! ~360 independent failure chances into a single one, relaxing the
//! device-level failure budget ~350× and shrinking the required upsizing
//! from `W_min = 155 nm` to `103 nm` at the 45 nm node.
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`stats`] (`cnt-stats`) | distributions, renewal CNT counting, estimators |
//! | [`growth`] (`cnt-growth`) | CNT growth simulator + VMR removal |
//! | [`device`] (`cnfet-device`) | CNFET geometry, count failure, Ion, gate cap |
//! | [`celllib`] (`cnfet-celllib`) | Nangate-45-class + commercial-65-class libraries |
//! | [`layout`] (`cnfet-layout`) | aligned-active transform, grids, placement |
//! | [`netlist`] (`cnfet-netlist`) | OpenRISC-class design generator + mapping |
//! | [`sim`] (`cnfet-sim`) | conditional Monte Carlo + exact run-DP |
//! | [`core`] (`cnfet-core`) | the paper's yield models and optimizer |
//! | [`fault`] (`cnfet-fault`) | s-CNT purity defect model + redundancy-scheme yield algebra |
//! | [`pipeline`] (`cnfet-pipeline`) | scenario specs, bounded curve caches, the v1 `YieldService` + envelopes |
//! | [`opt`] (`cnfet-opt`) | process–design co-optimization: searchers, Pareto fronts, `OptService` |
//! | [`plot`] (`cnfet-plot`) | ASCII figures and markdown/CSV tables |
//!
//! ## Quickstart
//!
//! ```
//! use cnfet::core::corner::ProcessCorner;
//! use cnfet::core::failure::FailureModel;
//! use cnfet::core::rowmodel::RowModel;
//! use cnfet::core::wmin::WminSolver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = FailureModel::paper_default(ProcessCorner::aggressive()?)?;
//! let solver = WminSolver::new(model);
//!
//! // Without correlation: W_min ≈ 155 nm (paper Sec 2.2).
//! let plain = solver.solve(0.90, 0.33 * 1e8)?;
//!
//! // With directional growth + aligned-active cells: ≈ 103 nm (Sec 3.3).
//! let row = RowModel::from_design(200.0, 1.8)?;
//! let relaxed = solver.solve_relaxed(0.90, 0.33 * 1e8, row.relaxation())?;
//! assert!(relaxed.w_min < plain.w_min - 30.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Service API
//!
//! Production callers use [`pipeline::YieldService`] — one shared set of
//! bounded LRU caches behind versioned request/response envelopes, with
//! streaming sweeps (`repro serve` exposes the same surface as a
//! JSON-lines daemon):
//!
//! ```
//! use cnfet::pipeline::{ResponseBody, ScenarioBuilder, YieldRequest, YieldService};
//!
//! # fn main() -> cnfet::pipeline::Result<()> {
//! let spec = ScenarioBuilder::new("w45")
//!     .fast_design(true)
//!     .rho(cnfet::pipeline::RhoSpec::Paper)
//!     .backend(cnfet::pipeline::BackendSpec::GaussianSum)
//!     .build()?;
//! let service = YieldService::new();
//! let responses = service.handle(&YieldRequest::evaluate("req-1", spec, 7));
//! let ResponseBody::Report(report) = &responses[0].body else {
//!     panic!("evaluate answers with a report");
//! };
//! assert!(report.w_min_nm > 100.0);
//! # Ok(())
//! # }
//! ```

pub use cnfet_celllib as celllib;
pub use cnfet_core as core;
pub use cnfet_device as device;
pub use cnfet_fault as fault;
pub use cnfet_layout as layout;
pub use cnfet_netlist as netlist;
pub use cnfet_opt as opt;
pub use cnfet_pipeline as pipeline;
pub use cnfet_plot as plot;
pub use cnfet_sim as sim;
pub use cnt_growth as growth;
pub use cnt_stats as stats;

/// Workspace version, from the facade crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // Touch one item from each re-exported crate.
        let _ = crate::stats::special::erf(1.0);
        let _ = crate::growth::growth::paper::MEAN_PITCH_NM;
        let _ = crate::device::FetType::NType;
        let _ = crate::celllib::cell::TechParams::nangate45();
        let _ = crate::layout::AlignmentOptions::default();
        let _ = crate::netlist::synth::DesignSpec::small();
        let _ = crate::sim::rundp::row_failure_probability(1, &[(0, 0)], 0.5);
        let _ = crate::core::paper::M_TRANSISTORS;
        let _ = crate::fault::RedundancyScheme::Tmr;
        let _ = crate::pipeline::ScenarioSpec::baseline("t");
        let _ = crate::pipeline::YieldService::new().describe();
        let _ = crate::opt::OptService::new().describe();
        let _ = crate::plot::Table::new("t", &["a"]);
        assert!(!crate::VERSION.is_empty());
    }
}
